// Causal request tracing (DESIGN.md §5f): SpanLog semantics, structural
// validation, exact latency attribution, Perfetto export shape, and the
// end-to-end span trees the testbed produces on the hit / miss /
// Delegation / flash-promotion / AP-restart paths.  Plus the contract the
// whole subsystem hangs off: tracing *off* (the default) leaves exports
// byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/span.hpp"
#include "obs/span_log.hpp"
#include "obs/trace_export.hpp"
#include "testbed/experiment.hpp"
#include "workload/real_apps.hpp"

using namespace ape;

namespace {

sim::Time at(std::int64_t us) { return sim::Time{} + sim::microseconds(us); }

// --- SpanLog semantics ----------------------------------------------------

TEST(SpanLog, DisabledByDefaultMintsNothing) {
  obs::SpanLog log;
  EXPECT_FALSE(log.enabled());
  const auto root = log.open_root("client.request", "client", "app:1", at(0));
  EXPECT_FALSE(root.valid());
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(SpanLog, OpenCloseLifecycle) {
  obs::SpanLog log;
  log.set_enabled(true);
  const auto root = log.open_root("client.request", "client", "app:1", at(0));
  ASSERT_TRUE(root.valid());
  const auto child = log.open(root, "dns.query", "client", "movie.example", at(10));
  ASSERT_TRUE(child.valid());
  EXPECT_EQ(child.trace, root.trace);
  EXPECT_EQ(log.open_count(), 2u);

  log.close(child, at(40));
  log.close(root, at(100));
  EXPECT_EQ(log.open_count(), 0u);

  ASSERT_EQ(log.spans().size(), 2u);
  // span.id == index + 1 — the invariant the exporters lean on.
  EXPECT_EQ(log.spans()[0].id, 1u);
  EXPECT_EQ(log.spans()[1].id, 2u);
  EXPECT_EQ(log.spans()[1].parent, root.span);
  EXPECT_EQ(log.spans()[1].duration(), sim::microseconds(30));
}

TEST(SpanLog, NullParentYieldsNullContext) {
  obs::SpanLog log;
  log.set_enabled(true);
  // Only explicit roots start traces: a child under nothing is refused, so
  // un-traced inbound messages never mint orphan trees.
  const auto orphan = log.open(obs::TraceContext{}, "ap.lookup", "ap", "k", at(0));
  EXPECT_FALSE(orphan.valid());
  EXPECT_EQ(log.recorded(), 0u);
}

TEST(SpanLog, CapacityDropsNewestNotOldest) {
  obs::SpanLog log(/*capacity=*/2);
  log.set_enabled(true);
  const auto a = log.open_root("client.request", "client", "a", at(0));
  const auto b = log.open(a, "dns.query", "client", "b", at(1));
  const auto c = log.open(b, "ap.lookup", "ap", "c", at(2));
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(c.valid());  // refused, not overwritten over `a`
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  // The survivors are ancestor-complete: `b`'s parent is still in the log.
  EXPECT_EQ(log.spans()[1].parent, a.span);
}

TEST(SpanLog, CloseIsIdempotentAndNullSafe) {
  obs::SpanLog log;
  log.set_enabled(true);
  const auto root = log.open_root("client.request", "client", "a", at(0));
  log.close(root, at(50));
  log.close(root, at(999));  // first close wins
  EXPECT_EQ(log.spans()[0].end, at(50));
  log.close(obs::TraceContext{}, at(10));                 // null: no-op
  log.close(obs::TraceContext{12345, 678}, at(10));       // unknown: no-op
  EXPECT_EQ(log.open_count(), 0u);
}

TEST(SpanLog, AmbientStackBridgesSynchronousCalls) {
  obs::SpanLog log;
  log.set_enabled(true);
  EXPECT_FALSE(log.current_context().valid());
  const auto root = log.open_root("client.request", "client", "a", at(0));
  {
    obs::ScopedTraceContext scope(&log, root);
    EXPECT_EQ(log.current_context(), root);
  }
  EXPECT_FALSE(log.current_context().valid());
  // Inert on null logs and null contexts.
  { obs::ScopedTraceContext scope(nullptr, root); }
  { obs::ScopedTraceContext scope(&log, obs::TraceContext{}); }
  EXPECT_FALSE(log.current_context().valid());
}

TEST(TraceContext, EncodeDecodeRoundTrip) {
  const obs::TraceContext ctx{7, 42};
  const auto wire = obs::encode_trace_context(ctx);
  EXPECT_EQ(obs::decode_trace_context(wire), ctx);
  EXPECT_FALSE(obs::decode_trace_context("").valid());
  EXPECT_FALSE(obs::decode_trace_context("7").valid());
  EXPECT_FALSE(obs::decode_trace_context("x-y").valid());
}

// --- validation + attribution over hand-built dumps -----------------------

obs::Span make_span(obs::TraceId trace, obs::SpanId id, obs::SpanId parent,
                    const std::string& name, std::int64_t start_us, std::int64_t end_us,
                    bool closed = true) {
  obs::Span s;
  s.trace = trace;
  s.id = id;
  s.parent = parent;
  s.name = name;
  s.component = "test";
  s.start = at(start_us);
  s.end = at(end_us);
  s.closed = closed;
  return s;
}

TEST(SpanValidation, AcceptsProperTreeAndReconcilesExactly) {
  std::vector<obs::Span> spans{
      make_span(1, 1, 0, "client.request", 0, 100),
      make_span(1, 2, 1, "dns.query", 10, 40),
      make_span(1, 3, 1, "http.fetch", 40, 90),
      make_span(1, 4, 3, "net.connect", 45, 55),
  };
  EXPECT_TRUE(obs::validate_spans(spans).empty());

  const auto traces = obs::attribute_traces(spans);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].reconciles);
  EXPECT_EQ(traces[0].end_to_end, sim::microseconds(100));
  EXPECT_EQ(traces[0].exclusive_sum, sim::microseconds(100));
  // root: 100 - (30 + 50) = 20; fetch: 50 - 10 = 40.
  EXPECT_EQ(traces[0].rows[0].exclusive, sim::microseconds(20));
  EXPECT_EQ(traces[0].rows[2].exclusive, sim::microseconds(40));
}

TEST(SpanValidation, FlagsUnclosedSpan) {
  std::vector<obs::Span> spans{
      make_span(1, 1, 0, "client.request", 0, 100),
      make_span(1, 2, 1, "dns.query", 10, 10, /*closed=*/false),
  };
  EXPECT_FALSE(obs::validate_spans(spans).empty());
}

TEST(SpanValidation, FlagsSiblingOverlap) {
  std::vector<obs::Span> spans{
      make_span(1, 1, 0, "client.request", 0, 100),
      make_span(1, 2, 1, "dns.query", 10, 50),
      make_span(1, 3, 1, "http.fetch", 40, 90),  // overlaps [40,50)
  };
  EXPECT_FALSE(obs::validate_spans(spans).empty());
  // Note the *sums* still cancel (the overlap is counted twice in the
  // children and subtracted twice from the root) — which is precisely why
  // exact attribution is only meaningful after validate_spans passes.
}

TEST(SpanValidation, FlagsChildEscapingParent) {
  std::vector<obs::Span> spans{
      make_span(1, 1, 0, "client.request", 0, 100),
      make_span(1, 2, 1, "dns.query", 90, 120),  // past parent's end
  };
  EXPECT_FALSE(obs::validate_spans(spans).empty());
}

TEST(SpanValidation, FlagsMultipleRootsAndOrphans) {
  std::vector<obs::Span> two_roots{
      make_span(1, 1, 0, "client.request", 0, 100),
      make_span(1, 2, 0, "client.request", 10, 90),
  };
  EXPECT_FALSE(obs::validate_spans(two_roots).empty());

  std::vector<obs::Span> orphan{
      make_span(1, 1, 0, "client.request", 0, 100),
      make_span(1, 2, 77, "dns.query", 10, 40),  // parent id 77 not in dump
  };
  EXPECT_FALSE(obs::validate_spans(orphan).empty());
}

// --- end-to-end span trees through the testbed ----------------------------

core::ClientRuntime::FetchResult fetch_one(testbed::Testbed& bed,
                                           testbed::Testbed::Client& client,
                                           const std::string& url) {
  core::ClientRuntime::FetchResult out;
  client.runtime->fetch(url, [&out](core::ClientRuntime::FetchResult r) { out = r; });
  bed.simulator().run();
  return out;
}

// Asserts the full dump validates and every trace reconciles exactly —
// the acceptance bar for the tracing subsystem.
void expect_all_reconcile(const testbed::Testbed& bed) {
  const auto& spans = bed.observer().spans().spans();
  const auto issues = obs::validate_spans(spans);
  for (const auto& issue : issues) {
    ADD_FAILURE() << "trace " << issue.trace << " span " << issue.span << ": " << issue.what;
  }
  for (const auto& trace : obs::attribute_traces(spans)) {
    EXPECT_TRUE(trace.reconciles)
        << "trace " << trace.trace << ": exclusive sum " << trace.exclusive_sum.count()
        << "us != end-to-end " << trace.end_to_end.count() << "us";
  }
}

std::set<std::string> span_kinds(const testbed::Testbed& bed) {
  std::set<std::string> kinds;
  for (const auto& s : bed.observer().spans().spans()) kinds.insert(s.name);
  return kinds;
}

struct TracedFixture : ::testing::Test {
  std::unique_ptr<testbed::Testbed> bed;
  testbed::Testbed::Client* client = nullptr;
  workload::AppSpec app = workload::make_movie_trailer();

  void build(testbed::TestbedParams params) {
    params.enable_spans = true;
    bed = std::make_unique<testbed::Testbed>(params);
    bed->host_app(app);
    client = &bed->add_client("phone");
    for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
  }
};

TEST_F(TracedFixture, MissThenHitProduceReconcilingTrees) {
  build(testbed::TestbedParams{});
  ASSERT_TRUE(fetch_one(*bed, *client, app.requests[0].url).success);  // miss/delegation
  const auto hit = fetch_one(*bed, *client, app.requests[0].url);      // AP hit
  ASSERT_TRUE(hit.success);
  EXPECT_EQ(hit.source, core::ClientRuntime::Source::ApCache);

  expect_all_reconcile(*bed);
  const auto kinds = span_kinds(*bed);
  EXPECT_TRUE(kinds.count("client.request"));
  EXPECT_TRUE(kinds.count("dns.query"));
  EXPECT_TRUE(kinds.count("ap.lookup"));
  EXPECT_TRUE(kinds.count("ap.serve"));  // the hit was served by the AP
  EXPECT_TRUE(kinds.count("net.connect"));
  EXPECT_EQ(bed->observer().spans().open_count(), 0u);  // nothing leaks
}

TEST_F(TracedFixture, DelegationTraceCrossesAllHops) {
  build(testbed::TestbedParams{});
  ASSERT_TRUE(fetch_one(*bed, *client, app.requests[0].url).success);
  expect_all_reconcile(*bed);

  // The delegated pull must stitch one causal chain from the client's root
  // through the AP's fetch to the edge's serve: walk edge.serve's parents
  // up to the root and record what the chain passes through.
  const auto& spans = bed->observer().spans().spans();
  const auto edge_it = std::find_if(spans.begin(), spans.end(),
                                    [](const obs::Span& s) { return s.name == "edge.serve"; });
  ASSERT_NE(edge_it, spans.end()) << "delegated fetch must reach the edge";
  std::set<std::string> chain;
  const obs::Span* cursor = &*edge_it;
  while (true) {
    chain.insert(cursor->name);
    if (cursor->parent == 0) break;
    ASSERT_LE(cursor->parent, spans.size());
    cursor = &spans[cursor->parent - 1];  // id == index + 1
  }
  EXPECT_TRUE(chain.count("client.request"));  // reached the client's root
  EXPECT_TRUE(chain.count("ap.delegate"));
  EXPECT_TRUE(chain.count("http.fetch"));
}

TEST_F(TracedFixture, PacmSolveSpansRideTheInsertPath) {
  testbed::TestbedParams params;
  // RAM too small for the app's objects: inserts evict, and under the
  // default PACM policy each eviction decision is a traced solve.
  params.ape.cache_capacity_bytes = 10'000;
  build(params);
  // Two passes: the tight cache evicts earlier objects, so the second pass
  // re-delegates URLs the AP already holds an l_d estimate for — which is
  // what feeds the pacm.latency_estimate_error_ms histogram.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& request : app.requests) (void)fetch_one(*bed, *client, request.url);
  }

  expect_all_reconcile(*bed);
  const auto& spans = bed->observer().spans().spans();
  bool saw_solve = false;
  for (const auto& s : spans) {
    if (s.name != "pacm.solve") continue;
    saw_solve = true;
    EXPECT_EQ(s.duration(), sim::Duration{0});  // synchronous marker span
    EXPECT_NE(s.parent, 0u) << "solve must parent under the inserting hop";
  }
  EXPECT_TRUE(saw_solve);
  // Satellite: the PACM estimate-error histogram only exists when traced.
  bed->collect_metrics();
  EXPECT_TRUE(bed->observer().metrics().histograms().count("pacm.latency_estimate_error_ms"));
}

testbed::TestbedParams tiered_traced_params() {
  testbed::TestbedParams params;
  params.policy_override = core::ApRuntime::Policy::Lru;  // deterministic demotions
  params.ape.cache_capacity_bytes = 20'000;
  params.ape.flash_capacity_bytes = 5'000'000;
  return params;
}

TEST_F(TracedFixture, FlashPromotionTraced) {
  build(tiered_traced_params());
  for (const auto& request : app.requests) (void)fetch_one(*bed, *client, request.url);
  ASSERT_GT(bed->ap().flash_tier()->entry_count(), 0u) << "workload must spill into flash";
  // Re-fetch: demoted objects come back via flash reads (and promotions).
  for (const auto& request : app.requests) (void)fetch_one(*bed, *client, request.url);
  ASSERT_GT(bed->ap().tiered_store()->flash_hits(), 0u);

  expect_all_reconcile(*bed);
  EXPECT_TRUE(span_kinds(*bed).count("ap.flash.read"));
  // A flash read nests inside the AP's serve span of the same trace.
  const auto& spans = bed->observer().spans().spans();
  for (const auto& s : spans) {
    if (s.name != "ap.flash.read") continue;
    ASSERT_NE(s.parent, 0u);
    EXPECT_EQ(spans[s.parent - 1].name, "ap.serve");
  }
}

TEST_F(TracedFixture, TracingSurvivesApRestart) {
  build(tiered_traced_params());
  for (const auto& request : app.requests) (void)fetch_one(*bed, *client, request.url);
  bed->restart_ap(/*preserve_flash=*/true);

  auto& phone2 = bed->add_client("phone2");
  for (auto& spec : app.cacheables()) phone2.runtime->register_cacheable(spec);
  for (const auto& request : app.requests) {
    EXPECT_TRUE(fetch_one(*bed, phone2, request.url).success);
  }
  expect_all_reconcile(*bed);
  EXPECT_EQ(bed->observer().spans().open_count(), 0u);
  EXPECT_TRUE(span_kinds(*bed).count("ap.flash.read"));  // recovered flash serves
}

// --- the byte-identity contract -------------------------------------------

std::string default_run_json() {
  testbed::Testbed bed{testbed::TestbedParams{}};
  const auto app = workload::make_movie_trailer();
  bed.host_app(app);
  auto& client = bed.add_client("phone");
  for (auto spec : app.cacheables()) client.runtime->register_cacheable(spec);
  for (const auto& request : app.requests) (void)fetch_one(bed, client, request.url);
  bed.collect_metrics();
  return obs::to_json(bed.observer().metrics());
}

TEST(SpanByteIdentity, DefaultRunsExportIdenticallyAndCarryNoSpanKeys) {
  const auto first = default_run_json();
  const auto second = default_run_json();
  EXPECT_EQ(first, second);
  // Tracing off: no span-derived metrics may appear anywhere in the export.
  EXPECT_EQ(first.find("span."), std::string::npos);
  EXPECT_EQ(first.find("obs.spans"), std::string::npos);
  EXPECT_EQ(first.find("pacm.latency_estimate_error_ms"), std::string::npos);
}

TEST_F(TracedFixture, RepeatedCollectMetricsDoesNotDoubleCount) {
  build(testbed::TestbedParams{});
  ASSERT_TRUE(fetch_one(*bed, *client, app.requests[0].url).success);
  bed->collect_metrics();
  const auto& hist = bed->observer().metrics().histogram("span.client.request_ms", "ms");
  const auto count = hist.count();
  ASSERT_GT(count, 0u);
  bed->collect_metrics();  // cursor makes re-collection idempotent
  EXPECT_EQ(hist.count(), count);
}

// --- Perfetto export -------------------------------------------------------

TEST_F(TracedFixture, PerfettoExportIsDeterministicAndWellFormed) {
  build(testbed::TestbedParams{});
  ASSERT_TRUE(fetch_one(*bed, *client, app.requests[0].url).success);

  obs::PerfettoExportOptions options;
  options.meta["test"] = "spans";
  const auto json = obs::to_perfetto_json(bed->observer().spans().spans(), options);
  EXPECT_EQ(json, obs::to_perfetto_json(bed->observer().spans().spans(), options));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"client.request\""), std::string::npos);
  // No wall-clock anywhere: ts/dur are integer sim-microseconds.
  EXPECT_EQ(json.find("e+"), std::string::npos);
}

}  // namespace

// The AP runtime over the full Fig. 9 testbed: DNS-Cache semantics,
// delegation, block list, dummy-IP short-circuit, resource model.
#include <gtest/gtest.h>

#include "core/url_hash.hpp"
#include "testbed/testbed.hpp"
#include "workload/real_apps.hpp"

namespace ape::core {
namespace {

using testbed::System;
using testbed::Testbed;
using testbed::TestbedParams;

workload::AppSpec two_object_app() {
  workload::AppSpec app;
  app.name = "two-object";
  app.id = 50;
  app.domain = "api.two.example";
  for (const char* name : {"alpha", "beta"}) {
    workload::RequestSpec r;
    r.name = name;
    r.url = "http://api.two.example/" + std::string(name);
    r.size_bytes = 10'000;
    r.ttl_minutes = 30;
    r.priority = 2;
    r.retrieval_latency = sim::milliseconds(25);
    app.requests.push_back(std::move(r));
  }
  return app;
}

struct ApFixture : ::testing::Test {
  std::unique_ptr<Testbed> bed;
  Testbed::Client* client = nullptr;
  workload::AppSpec app = two_object_app();

  void build(System system, std::uint32_t cdn_ttl = 0) {
    TestbedParams params;
    params.system = system;
    params.cdn_answer_ttl = cdn_ttl;
    bed = std::make_unique<Testbed>(params);
    bed->host_app(app);
    client = &bed->add_client("phone");
    for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
  }

  ClientRuntime::FetchResult fetch(const std::string& url) {
    ClientRuntime::FetchResult out;
    client->runtime->fetch(url, [&out](ClientRuntime::FetchResult r) { out = std::move(r); });
    bed->simulator().run();
    return out;
  }

  Result<dns::DnsMessage> cache_lookup(const std::string& host,
                                       std::vector<UrlHash> hashes,
                                       sim::Duration* latency = nullptr) {
    Result<dns::DnsMessage> out = make_error<dns::DnsMessage>("not called");
    client->runtime->dns_cache_lookup(host, hashes,
                                      [&](Result<dns::DnsMessage> r, sim::Duration d) {
                                        out = std::move(r);
                                        if (latency) *latency = d;
                                      });
    bed->simulator().run();
    return out;
  }
};

TEST_F(ApFixture, UnknownUrlGetsDelegationFlag) {
  build(System::ApeCache);
  const UrlHash h = hash_url("http://api.two.example/alpha");
  const auto resp = cache_lookup("api.two.example", {h});
  ASSERT_TRUE(resp.ok());
  const auto view = extract_dns_cache(resp.value());
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view.value().entries.size(), 1u);
  EXPECT_EQ(view.value().entries[0].flag, CacheFlag::Delegation);
}

TEST_F(ApFixture, DelegationFetchesCachesAndServes) {
  build(System::ApeCache);
  const auto first = fetch("http://api.two.example/alpha");
  ASSERT_TRUE(first.success);
  EXPECT_EQ(first.source, ClientRuntime::Source::ApDelegated);
  EXPECT_EQ(first.bytes, 10'000u);
  EXPECT_EQ(bed->ap().delegations_performed(), 1u);
  EXPECT_EQ(bed->ap().data_cache().entry_count(), 1u);

  const auto second = fetch("http://api.two.example/alpha");
  ASSERT_TRUE(second.success);
  EXPECT_EQ(second.source, ClientRuntime::Source::ApCache);
  EXPECT_EQ(second.flag, CacheFlag::CacheHit);
  // Millisecond-level: well under the edge path.
  EXPECT_LT(sim::to_millis(second.total), 20.0);
  EXPECT_LT(second.total, first.total);
}

TEST_F(ApFixture, DummyIpShortCircuitWhenAllCached) {
  build(System::ApeCache);
  // Cache both objects under the domain.
  fetch("http://api.two.example/alpha");
  fetch("http://api.two.example/beta");

  const UrlHash h = hash_url("http://api.two.example/alpha");
  const auto resp = cache_lookup("api.two.example", {h});
  ASSERT_TRUE(resp.ok());
  const auto addr = dns::StubResolver::extract_address(
      resp.value(), dns::DnsName::parse("api.two.example").value());
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().address, net::kDummyIp);
  EXPECT_EQ(addr.value().ttl, 0u);  // never client-cached
}

TEST_F(ApFixture, DelegationOnlyDomainAlsoShortCircuits) {
  build(System::ApeCache);
  fetch("http://api.two.example/alpha");  // beta still unknown -> Delegation

  // Cache-Hits serve locally and Delegations go through the AP, so the
  // client never needs the edge IP: the AP short-circuits with the dummy.
  const auto resp = cache_lookup("api.two.example",
                                 {hash_url("http://api.two.example/alpha"),
                                  hash_url("http://api.two.example/beta")});
  ASSERT_TRUE(resp.ok());
  const auto addr = dns::StubResolver::extract_address(
      resp.value(), dns::DnsName::parse("api.two.example").value());
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().address, net::kDummyIp);
}

TEST_F(ApFixture, BlockListedUrlForcesRealIp) {
  build(System::ApeCache);
  workload::AppSpec big;
  big.name = "blocky";
  big.id = 52;
  big.domain = "api.blocky.example";
  workload::RequestSpec small;
  small.name = "small";
  small.url = "http://api.blocky.example/small";
  small.size_bytes = 5'000;
  small.ttl_minutes = 30;
  big.requests.push_back(small);
  workload::RequestSpec huge = small;
  huge.name = "huge";
  huge.url = "http://api.blocky.example/huge";
  huge.size_bytes = 700'000;
  big.requests.push_back(huge);
  bed->host_app(big);
  for (auto& spec : big.cacheables()) client->runtime->register_cacheable(spec);

  fetch("http://api.blocky.example/small");  // cached
  fetch("http://api.blocky.example/huge");   // block-listed

  // A Cache-Miss flag means the client must reach the edge itself: the AP
  // must answer with the real edge address.
  const auto resp = cache_lookup("api.blocky.example",
                                 {hash_url("http://api.blocky.example/small"),
                                  hash_url("http://api.blocky.example/huge")});
  ASSERT_TRUE(resp.ok());
  const auto addr = dns::StubResolver::extract_address(
      resp.value(), dns::DnsName::parse("api.blocky.example").value());
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr.value().address, bed->edge_ip());
}

TEST_F(ApFixture, ResponseBatchesAllKnownUrlsUnderDomain) {
  build(System::ApeCache);
  fetch("http://api.two.example/alpha");
  fetch("http://api.two.example/beta");

  // Ask about only one hash; the response must still carry both.
  const auto resp = cache_lookup("api.two.example",
                                 {hash_url("http://api.two.example/alpha")});
  ASSERT_TRUE(resp.ok());
  const auto view = extract_dns_cache(resp.value());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().entries.size(), 2u);
}

TEST_F(ApFixture, OversizedObjectLandsOnBlockList) {
  build(System::ApeCache);
  workload::AppSpec big;
  big.name = "big";
  big.id = 51;
  big.domain = "api.big.example";
  workload::RequestSpec r;
  r.name = "huge";
  r.url = "http://api.big.example/huge";
  r.size_bytes = 600'000;  // above the 500 kB threshold
  r.ttl_minutes = 30;
  r.priority = 2;
  big.requests.push_back(r);
  bed->host_app(big);
  for (auto& spec : big.cacheables()) client->runtime->register_cacheable(spec);

  const auto first = fetch("http://api.big.example/huge");
  ASSERT_TRUE(first.success);
  EXPECT_EQ(first.source, ClientRuntime::Source::ApDelegated);
  EXPECT_EQ(bed->ap().block_list().size(), 1u);
  EXPECT_EQ(bed->ap().data_cache().entry_count(), 0u);

  // Next lookup reports Cache-Miss; the client goes straight to the edge.
  const auto second = fetch("http://api.big.example/huge");
  ASSERT_TRUE(second.success);
  EXPECT_EQ(second.flag, CacheFlag::CacheMiss);
  EXPECT_EQ(second.source, ClientRuntime::Source::EdgeServer);
}

TEST_F(ApFixture, TtlExpiryReturnsToDelegation) {
  build(System::ApeCache);
  fetch("http://api.two.example/alpha");
  // Jump past the 30-minute object TTL.
  bed->simulator().run_until(bed->simulator().now() + sim::minutes(31.0));
  const auto result = fetch("http://api.two.example/alpha");
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.source, ClientRuntime::Source::ApDelegated);
  EXPECT_EQ(bed->ap().delegations_performed(), 2u);
}

TEST_F(ApFixture, RegularDnsForwardingServesNonApeClients) {
  build(System::EdgeCache);
  ClientRuntime::FetchResult out;
  client->runtime->fetch_via_edge("http://api.two.example/alpha",
                                  [&out](ClientRuntime::FetchResult r) { out = std::move(r); });
  bed->simulator().run();
  ASSERT_TRUE(out.success);
  EXPECT_EQ(out.source, ClientRuntime::Source::EdgeServer);
  // Akamai-style uncacheable mapping: the lookup pays the resolver chain.
  EXPECT_GT(sim::to_millis(out.lookup_latency), 15.0);
}

TEST_F(ApFixture, ApDnsCacheHonoursMappingTtl) {
  build(System::EdgeCache, /*cdn_ttl=*/30);
  auto lookup_latency = [&] {
    sim::Duration d{};
    bool ok = false;
    client->runtime->regular_dns_lookup("api.two.example",
                                        [&](Result<dns::DnsMessage> r, sim::Duration t) {
                                          ok = r.ok();
                                          d = t;
                                        });
    bed->simulator().run();
    EXPECT_TRUE(ok);
    return sim::to_millis(d);
  };
  const double cold = lookup_latency();
  const double warm = lookup_latency();
  EXPECT_LT(warm, cold * 0.5);  // served from the AP's dnsmasq cache
  // After the 30 s TTL, cold again.
  bed->simulator().run_until(bed->simulator().now() + sim::seconds(31.0));
  EXPECT_GT(lookup_latency(), warm * 2.0);
}

TEST_F(ApFixture, ApeDisabledApAnswersWithoutCacheRr) {
  build(System::EdgeCache);
  const auto resp = cache_lookup("api.two.example",
                                 {hash_url("http://api.two.example/alpha")});
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(extract_dns_cache(resp.value()).ok());  // no DNS-Cache RR
}

TEST_F(ApFixture, MemoryModelGrowsWithCacheContents) {
  build(System::ApeCache);
  const std::size_t before = bed->ap().memory_bytes();
  fetch("http://api.two.example/alpha");
  fetch("http://api.two.example/beta");
  const std::size_t after = bed->ap().memory_bytes();
  EXPECT_GE(after, before + 20'000);
}

TEST_F(ApFixture, ResetCacheRestoresColdState) {
  build(System::ApeCache);
  fetch("http://api.two.example/alpha");
  bed->ap().reset_cache();
  EXPECT_EQ(bed->ap().data_cache().entry_count(), 0u);
  EXPECT_EQ(bed->ap().memory_bytes(),
            bed->ap().config().base_memory_bytes + bed->ap().config().runtime_memory_bytes);
  const auto result = fetch("http://api.two.example/alpha");
  EXPECT_EQ(result.source, ClientRuntime::Source::ApDelegated);
}

TEST_F(ApFixture, ForwardPacketChargesCpuAndTracksFlows) {
  build(System::ApeCache);
  const auto busy_before = bed->ap().cpu().busy_time();
  bed->ap().forward_packet(1500, true);
  bed->ap().forward_packet(1500, false);
  bed->simulator().run();
  EXPECT_GT(bed->ap().cpu().busy_time(), busy_before);
  EXPECT_EQ(bed->ap().active_flows(), 1u);
}

TEST_F(ApFixture, LookupStatsTrackFlags) {
  build(System::ApeCache);
  fetch("http://api.two.example/alpha");  // Delegation
  fetch("http://api.two.example/alpha");  // Hit
  const auto& stats = bed->ap().lookup_stats();
  EXPECT_GE(stats.delegations(), 1u);
  EXPECT_GE(stats.hits(), 1u);
}

TEST_F(ApFixture, EdgeOutageFailsDelegationGracefully) {
  build(System::ApeCache);
  // Sever the AP<->edge path (first hop of the chain).
  auto& topo = bed->network().topology();
  // Sever every WAN-side link of the AP (node 0) but keep the WiFi link to
  // the client (the last-added node) up.
  const auto client_node = client->node;
  for (std::uint32_t i = 1; i < topo.node_count(); ++i) {
    const net::NodeId node{i};
    if (node == client_node) continue;
    if (topo.link_exists(net::NodeId{0}, node)) {
      topo.set_link_down(net::NodeId{0}, node, true);
    }
  }

  const auto result = fetch("http://api.two.example/alpha");
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace ape::core

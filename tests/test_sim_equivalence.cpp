// Scheduler-equivalence property test (DESIGN.md §5h).
//
// The calendar-queue engine is only allowed to be *faster* than the
// reference binary heap, never different: both must honour the exact
// (time, seq) ordering contract, fire identical event sequences, and keep
// identical tombstone/compaction accounting.  This test replays randomized
// schedule/cancel/run interleavings through a QueueKind::Calendar and a
// QueueKind::BinaryHeap simulator side by side and diffs everything
// observable after every step.
//
// The workload generator deliberately covers the calendar engine's edge
// geometry:
//   * same-instant bursts (seq tiebreak),
//   * events right at / just past the wheel-horizon boundary — a far
//     event whose bucket aliases the cursor's wheel index is exactly the
//     class of bug unit tests missed during development,
//   * far-future events that must migrate into the wheel as the cursor
//     advances,
//   * schedule-then-cancel churn that drives the compaction threshold.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ape::sim {
namespace {

// One logical event scheduled into both engines; ids differ between the
// engines (arena slots are engine-local), so we track them pairwise.
struct PendingPair {
  Simulator::EventId calendar_id;
  Simulator::EventId heap_id;
  std::uint32_t tag;
};

class LockstepHarness {
 public:
  LockstepHarness() : calendar_(QueueKind::Calendar), heap_(QueueKind::BinaryHeap) {}

  void schedule(Duration delay, std::uint32_t tag) {
    PendingPair pair;
    pair.tag = tag;
    pair.calendar_id = calendar_.schedule_in(delay, [this, tag] {
      calendar_fired_.push_back(tag);
      calendar_fire_times_.push_back(calendar_.now().since_epoch.count());
    });
    pair.heap_id = heap_.schedule_in(delay, [this, tag] {
      heap_fired_.push_back(tag);
      heap_fire_times_.push_back(heap_.now().since_epoch.count());
    });
    pending_.push_back(pair);
  }

  // Cancels the i-th tracked pair (if still tracked); both engines must
  // agree on whether the cancel landed.
  void cancel(std::size_t index) {
    if (pending_.empty()) return;
    const PendingPair pair = pending_[index % pending_.size()];
    const bool a = calendar_.cancel(pair.calendar_id);
    const bool b = heap_.cancel(pair.heap_id);
    ASSERT_EQ(a, b) << "cancel disagreement for tag " << pair.tag;
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(index % pending_.size()));
  }

  void run_until(Time deadline) {
    const std::size_t a = calendar_.run_until(deadline);
    const std::size_t b = heap_.run_until(deadline);
    ASSERT_EQ(a, b);
    check();
  }

  void step(std::size_t n) {
    const std::size_t a = calendar_.step(n);
    const std::size_t b = heap_.step(n);
    ASSERT_EQ(a, b);
    check();
  }

  void drain() {
    const std::size_t a = calendar_.run();
    const std::size_t b = heap_.run();
    ASSERT_EQ(a, b);
    check();
  }

  // Diffs every observable: fired sequence, fire timestamps, clock, and
  // the full accounting surface.
  void check() const {
    ASSERT_EQ(calendar_fired_, heap_fired_);
    ASSERT_EQ(calendar_fire_times_, heap_fire_times_);
    EXPECT_EQ(calendar_.now().since_epoch.count(), heap_.now().since_epoch.count());
    EXPECT_EQ(calendar_.pending(), heap_.pending());
    EXPECT_EQ(calendar_.events_fired(), heap_.events_fired());
    EXPECT_EQ(calendar_.events_cancelled(), heap_.events_cancelled());
    EXPECT_EQ(calendar_.queue_size(), heap_.queue_size());
    EXPECT_EQ(calendar_.tombstones(), heap_.tombstones());
    EXPECT_EQ(calendar_.queue_high_water(), heap_.queue_high_water());
    EXPECT_EQ(calendar_.compactions(), heap_.compactions());
  }

  Simulator& calendar() noexcept { return calendar_; }

 private:
  Simulator calendar_;
  Simulator heap_;
  std::vector<PendingPair> pending_;
  std::vector<std::uint32_t> calendar_fired_;
  std::vector<std::uint32_t> heap_fired_;
  std::vector<std::int64_t> calendar_fire_times_;
  std::vector<std::int64_t> heap_fire_times_;
};

// The wheel horizon in microseconds: bucket width 2^10 us, 4096 slots.
constexpr std::int64_t kHorizonUs = std::int64_t{1} << (10 + 12);

TEST(SchedulerEquivalence, RandomizedInterleavings) {
  Rng rng(20240607);
  LockstepHarness h;
  std::uint32_t tag = 0;

  for (int round = 0; round < 400; ++round) {
    const std::int64_t action = rng.uniform_int(0, 9);
    if (action < 5) {
      // Schedule a burst; mix short-horizon, boundary, and far delays.
      const std::int64_t burst = rng.uniform_int(1, 8);
      for (std::int64_t i = 0; i < burst; ++i) {
        std::int64_t delay_us;
        switch (rng.uniform_int(0, 3)) {
          case 0: delay_us = rng.uniform_int(0, 5000); break;          // near
          case 1: delay_us = rng.uniform_int(0, kHorizonUs); break;    // wheel
          case 2:
            // Straddle the horizon boundary: the far-event-aliasing bug
            // class lives within one bucket of cursor + horizon.
            delay_us = kHorizonUs + rng.uniform_int(-2048, 2048);
            break;
          default: delay_us = rng.uniform_int(kHorizonUs, 4 * kHorizonUs); break;
        }
        h.schedule(microseconds(delay_us), tag++);
        if (::testing::Test::HasFatalFailure()) return;
      }
    } else if (action < 7) {
      h.cancel(static_cast<std::size_t>(rng.uniform_int(0, 1 << 20)));
      if (::testing::Test::HasFatalFailure()) return;
    } else if (action < 9) {
      const std::int64_t ahead = rng.uniform_int(0, 2 * kHorizonUs);
      h.run_until(h.calendar().now() + microseconds(ahead));
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      h.step(static_cast<std::size_t>(rng.uniform_int(1, 16)));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  h.drain();
}

TEST(SchedulerEquivalence, SameInstantBurstsKeepScheduleOrder) {
  LockstepHarness h;
  std::uint32_t tag = 0;
  // Many events on the exact same instants, spread across bucket
  // boundaries, so tie-breaking is carried entirely by seq.
  for (int wave = 0; wave < 32; ++wave) {
    for (int i = 0; i < 16; ++i) {
      h.schedule(microseconds(wave * 1024), tag++);  // bucket-aligned instants
      h.schedule(microseconds(wave * 1024 + 1), tag++);
    }
  }
  h.drain();
}

TEST(SchedulerEquivalence, HeavyCancelChurnMatchesCompactionAccounting) {
  Rng rng(7);
  LockstepHarness h;
  std::uint32_t tag = 0;
  // Timeout-style workload: schedule short and far guards, cancel most of
  // them before they fire.  Drives tombstones_ across the compaction
  // threshold repeatedly; the engines must compact in lockstep.
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 6; ++i) {
      h.schedule(microseconds(rng.uniform_int(1, 3 * kHorizonUs)), tag++);
    }
    for (int i = 0; i < 5; ++i) {
      h.cancel(static_cast<std::size_t>(rng.uniform_int(0, 1 << 20)));
      if (::testing::Test::HasFatalFailure()) return;
    }
    if (round % 16 == 0) {
      h.run_until(h.calendar().now() + microseconds(rng.uniform_int(0, kHorizonUs)));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  h.drain();
}

TEST(SchedulerEquivalence, FarFutureMigrationAcrossIdleGaps) {
  LockstepHarness h;
  std::uint32_t tag = 0;
  // Sparse far-future timers with nothing in between: the calendar engine
  // must jump its cursor across empty wheels and migrate far events into
  // the horizon without reordering them.
  for (int i = 0; i < 64; ++i) {
    h.schedule(microseconds((i + 1) * (kHorizonUs / 2) + (i % 7)), tag++);
  }
  // A couple of short-horizon events to force cursor resets near zero.
  h.schedule(microseconds(10), tag++);
  h.schedule(microseconds(11), tag++);
  h.drain();
}

}  // namespace
}  // namespace ape::sim

// End-to-end experiments at reduced scale: system orderings the paper's
// evaluation reports must already hold on short runs.
#include <gtest/gtest.h>

#include "testbed/experiment.hpp"
#include "testbed/wan.hpp"
#include "workload/app_generator.hpp"
#include "workload/real_apps.hpp"

namespace ape::testbed {
namespace {

std::vector<workload::AppSpec> small_workload(std::size_t apps, std::size_t max_kb = 100) {
  workload::GeneratorParams params;
  params.app_count = apps;
  params.max_object_bytes = max_kb * 1000;
  sim::Rng rng(1234);
  return workload::generate_apps(params, rng);
}

WorkloadConfig quick_config() {
  WorkloadConfig config;
  config.duration = sim::minutes(10.0);
  config.mean_freq_per_min = 3.0;
  config.seed = 99;
  return config;
}

TEST(Integration, ApeCacheServesMostObjectsFromAp) {
  const auto apps = small_workload(6);
  const auto result = run_system(System::ApeCache, TestbedParams{}, apps, quick_config());
  EXPECT_GT(result.app_runs, 50u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(result.hit_ratio(), 0.5);  // small working set fits 5 MB
}

TEST(Integration, SystemLatencyOrderingMatchesPaper) {
  const auto apps = small_workload(8);
  const auto config = quick_config();
  const auto ape = run_system(System::ApeCache, TestbedParams{}, apps, config);
  const auto ape_lru = run_system(System::ApeCacheLru, TestbedParams{}, apps, config);
  const auto wicache = run_system(System::WiCache, TestbedParams{}, apps, config);
  const auto edge = run_system(System::EdgeCache, TestbedParams{}, apps, config);

  // Fig. 13: APE-CACHE <= APE-CACHE-LRU < Wi-Cache < Edge Cache.
  EXPECT_LE(ape.app_latency_ms.mean(), ape_lru.app_latency_ms.mean() * 1.15);
  EXPECT_LT(ape.app_latency_ms.mean(), wicache.app_latency_ms.mean());
  EXPECT_LT(wicache.app_latency_ms.mean(), edge.app_latency_ms.mean());
  // Headline: APE-CACHE reduces app-level latency vs Edge Cache by >50%
  // (the paper reports up to 76%).
  EXPECT_LT(ape.app_latency_ms.mean(), edge.app_latency_ms.mean() * 0.5);
}

TEST(Integration, ObjectLevelLatenciesMatchPaperShape) {
  const auto apps = small_workload(6);
  const auto config = quick_config();
  const auto ape = run_system(System::ApeCache, TestbedParams{}, apps, config);
  const auto edge = run_system(System::EdgeCache, TestbedParams{}, apps, config);

  // Fig. 11: AP-hit lookup ~7.5 ms, retrieval ~7 ms; edge lookup >20 ms,
  // retrieval >25 ms.
  ASSERT_GT(ape.ap_hit_lookup_ms.count(), 0u);
  EXPECT_NEAR(ape.ap_hit_lookup_ms.mean(), 7.5, 4.0);
  EXPECT_NEAR(ape.ap_hit_retrieval_ms.mean(), 7.0, 4.0);
  EXPECT_GT(edge.edge_lookup_ms.mean(), 15.0);
  EXPECT_GT(edge.edge_retrieval_ms.mean(), 25.0);
  // Overall object latency: AP hits far below edge fetches.
  EXPECT_LT(ape.ap_hit_total_ms.mean() * 2.5, edge.edge_total_ms.mean());
}

TEST(Integration, PacmBeatsLruOnHighPriorityHitRatioUnderPressure) {
  // Larger objects so the 5 MB cache is under real pressure (Table IV).
  const auto apps = small_workload(20, /*max_kb=*/300);
  WorkloadConfig config = quick_config();
  config.duration = sim::minutes(20.0);

  const auto pacm = run_system(System::ApeCache, TestbedParams{}, apps, config);
  const auto lru = run_system(System::ApeCacheLru, TestbedParams{}, apps, config);

  ASSERT_GT(pacm.high_priority_fetches, 100u);
  EXPECT_GT(pacm.high_priority_hit_ratio(), lru.high_priority_hit_ratio());
  // PACM favours high-priority objects over its own average.
  EXPECT_GT(pacm.high_priority_hit_ratio(), pacm.hit_ratio());
}

TEST(Integration, CacheNeverExceedsCapacityDuringLongRun) {
  const auto apps = small_workload(15, /*max_kb=*/200);
  TestbedParams params;
  params.system = System::ApeCache;
  Testbed bed(params);
  const auto result = run_workload(bed, apps, quick_config());
  EXPECT_LE(bed.ap().data_cache().used_bytes(), bed.ap().data_cache().capacity_bytes());
  EXPECT_GT(bed.ap().data_cache().evictions() + bed.ap().data_cache().entry_count(), 0u);
  EXPECT_GT(result.object_fetches, 0u);
}

TEST(Integration, RealAppsRunOnAllSystems) {
  std::vector<workload::AppSpec> apps{workload::make_movie_trailer(),
                                      workload::make_virtual_home()};
  WorkloadConfig config = quick_config();
  config.duration = sim::minutes(5.0);
  for (System system : {System::ApeCache, System::ApeCacheLru, System::WiCache,
                        System::EdgeCache}) {
    const auto result = run_system(system, TestbedParams{}, apps, config);
    EXPECT_GT(result.app_runs, 5u) << to_string(system);
    EXPECT_EQ(result.failures, 0u) << to_string(system);
    EXPECT_GT(result.app_latency_ms.mean(), 0.0) << to_string(system);
  }
}

TEST(Integration, MovieTrailerTailLatencyImproves) {
  std::vector<workload::AppSpec> apps{workload::make_movie_trailer()};
  WorkloadConfig config = quick_config();
  const auto ape = run_system(System::ApeCache, TestbedParams{}, apps, config);
  const auto edge = run_system(System::EdgeCache, TestbedParams{}, apps, config);
  // Fig. 12: both average and p95 drop sharply.
  EXPECT_LT(ape.app_latency_ms.mean(), edge.app_latency_ms.mean() * 0.6);
  EXPECT_LT(ape.app_latency_ms.percentile(0.95),
            edge.app_latency_ms.percentile(0.95) * 0.8);
}

TEST(Integration, ApOverheadStaysModest) {
  // Fig. 14: APE-CACHE adds <= ~6% CPU and ~13 MB memory on the AP.
  const auto apps = small_workload(10);
  WorkloadConfig config = quick_config();

  TestbedParams params;
  params.system = System::ApeCache;
  Testbed bed(params);
  auto& meter = bed.meter_ap(sim::seconds(10.0), sim::Time{config.duration});
  const auto result = run_workload(bed, apps, config, /*account_passthrough=*/true);
  EXPECT_GT(result.app_runs, 0u);
  EXPECT_LT(meter.peak_cpu(), 0.5);
  const double extra_mb =
      meter.peak_memory_mb() -
      static_cast<double>(bed.ap().config().base_memory_bytes) / (1024.0 * 1024.0);
  EXPECT_LT(extra_mb, 30.0);
  EXPECT_GT(extra_mb, 0.0);
}

TEST(Integration, EdgeOutageDegradesButRecovers) {
  std::vector<workload::AppSpec> apps{workload::make_movie_trailer()};
  TestbedParams params;
  params.system = System::ApeCache;
  Testbed bed(params);
  bed.host_app(apps[0]);
  auto& client = bed.add_client("phone");
  for (auto& spec : apps[0].cacheables()) client.runtime->register_cacheable(spec);

  auto fetch = [&](const std::string& url) {
    core::ClientRuntime::FetchResult out;
    client.runtime->fetch(url, [&out](core::ClientRuntime::FetchResult r) { out = r; });
    bed.simulator().run();
    return out;
  };

  // Warm the cache, then kill the WAN: cached objects must still serve.
  ASSERT_TRUE(fetch("http://api.movietrailer.app/getMovieID").success);
  auto& topo = bed.network().topology();
  for (std::uint32_t i = 1; i < topo.node_count(); ++i) {
    if (net::NodeId{i} == client.node) continue;
    if (topo.link_exists(net::NodeId{0}, net::NodeId{i}) &&
        topo.node_name(net::NodeId{i}) != "phone") {
      topo.set_link_down(net::NodeId{0}, net::NodeId{i}, true);
    }
  }
  const auto cached = fetch("http://api.movietrailer.app/getMovieID");
  EXPECT_TRUE(cached.success);
  EXPECT_EQ(cached.source, core::ClientRuntime::Source::ApCache);

  // Uncached objects fail while the WAN is down...
  EXPECT_FALSE(fetch("http://api.movietrailer.app/getPlot").success);

  // ...and recover when it heals.
  for (std::uint32_t i = 1; i < topo.node_count(); ++i) {
    if (net::NodeId{i} == client.node) continue;
    topo.set_link_down(net::NodeId{0}, net::NodeId{i}, false);
  }
  EXPECT_TRUE(fetch("http://api.movietrailer.app/getPlot").success);
}

TEST(Integration, WanFixtureReproducesTableIShape) {
  WanFixture wan;
  const auto rows = wan.measure(/*query_count=*/20);
  ASSERT_EQ(rows.size(), 9u);

  double dns_sum = 0.0, rtt_sum = 0.0;
  const WanFixture::Measurement* sp_yahoo = nullptr;
  for (const auto& m : rows) {
    EXPECT_GT(m.dns_resolution_ms, 5.0) << m.location << "/" << m.service;
    EXPECT_GT(m.rtt_ms, 5.0);
    EXPECT_GE(m.hops, 7u);
    dns_sum += m.dns_resolution_ms;
    rtt_sum += m.rtt_ms;
    if (m.location.starts_with("Sao") && m.service == "Yahoo") sp_yahoo = &m;
  }
  // Paper Sec. II-B: averages ~22 ms DNS and ~38 ms RTT, excluding the
  // origin-served outlier these averages include it, so allow slack.
  EXPECT_NEAR(dns_sum / 9.0, 44.0, 25.0);
  EXPECT_NEAR(rtt_sum / 9.0, 38.0, 20.0);
  // Yahoo has no São Paulo deployment: served from the origin, far slower.
  ASSERT_NE(sp_yahoo, nullptr);
  EXPECT_TRUE(sp_yahoo->served_from_origin);
  EXPECT_GT(sp_yahoo->dns_resolution_ms, 100.0);
  EXPECT_GT(sp_yahoo->rtt_ms, 100.0);
}

TEST(Integration, DeterministicAcrossIdenticalRuns) {
  const auto apps = small_workload(5);
  WorkloadConfig config = quick_config();
  config.duration = sim::minutes(5.0);
  const auto a = run_system(System::ApeCache, TestbedParams{}, apps, config);
  const auto b = run_system(System::ApeCache, TestbedParams{}, apps, config);
  EXPECT_EQ(a.app_runs, b.app_runs);
  EXPECT_DOUBLE_EQ(a.app_latency_ms.mean(), b.app_latency_ms.mean());
  EXPECT_EQ(a.ap_hits, b.ap_hits);
}

}  // namespace
}  // namespace ape::testbed

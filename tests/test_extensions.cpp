// Extensions beyond the paper: GDSF eviction, PACM ablation switches,
// conditional-GET revalidation, multi-client workloads.
#include <gtest/gtest.h>

#include "cache/gdsf_policy.hpp"
#include "core/pacm.hpp"
#include "core/url_hash.hpp"
#include "testbed/experiment.hpp"
#include "workload/real_apps.hpp"
#include "workload/app_generator.hpp"

namespace ape {
namespace {

using cache::CacheEntry;
using cache::CacheStore;

CacheEntry sized_entry(const std::string& key, std::size_t size, double latency_ms,
                       double expires_s = 3600.0) {
  CacheEntry e;
  e.key = key;
  e.size_bytes = size;
  e.fetch_latency = sim::milliseconds(latency_ms);
  e.expires = sim::Time{sim::seconds(expires_s)};
  return e;
}

// --------------------------------------------------------------- GDSF

TEST(GdsfPolicy, PrefersCheapLargeVictims) {
  CacheStore store(300'000, std::make_unique<cache::GdsfPolicy>());
  const sim::Time t0{};
  // Large + cheap-to-refetch: low H.  Small + expensive: high H.
  store.insert(sized_entry("large-cheap", 200'000, 5.0), t0);
  store.insert(sized_entry("small-dear", 50'000, 50.0), t0);
  store.insert(sized_entry("incoming", 100'000, 30.0), t0);
  EXPECT_EQ(store.lookup_any("large-cheap"), nullptr);
  EXPECT_NE(store.lookup_any("small-dear"), nullptr);
  EXPECT_NE(store.lookup_any("incoming"), nullptr);
}

TEST(GdsfPolicy, FrequencyRaisesValue) {
  CacheStore store(250'000, std::make_unique<cache::GdsfPolicy>());
  const sim::Time t0{};
  store.insert(sized_entry("hot", 100'000, 10.0), t0);
  store.insert(sized_entry("cold", 100'000, 10.0), t0);
  for (int i = 0; i < 10; ++i) (void)store.get("hot", t0);
  store.insert(sized_entry("newcomer", 100'000, 10.0), t0);
  EXPECT_NE(store.lookup_any("hot"), nullptr);
  EXPECT_EQ(store.lookup_any("cold"), nullptr);
}

TEST(GdsfPolicy, InflationMonotone) {
  cache::GdsfPolicy policy;
  CacheStore store(150'000, std::make_unique<cache::GdsfPolicy>());
  const sim::Time t0{};
  double last = 0.0;
  for (int i = 0; i < 10; ++i) {
    store.insert(sized_entry("k" + std::to_string(i), 60'000, 10.0), t0);
    const auto& p = static_cast<const cache::GdsfPolicy&>(store.policy());
    EXPECT_GE(p.inflation(), last);
    last = p.inflation();
  }
  EXPECT_GT(last, 0.0);
}

TEST(GdsfPolicy, NameIsGdsf) {
  EXPECT_EQ(cache::GdsfPolicy{}.name(), "GDSF");
}

// ----------------------------------------------------- PACM ablations

TEST(PacmAblation, NoPriorityIgnoresPriorities) {
  core::ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  config.pacm_use_priority = false;
  core::PacmSolver solver(config);

  // Identical objects except priority: with priorities disabled the solver
  // must treat them the same, so the tie is broken elsewhere — both
  // orderings are acceptable, but flipping priorities must not change the
  // outcome.
  std::vector<core::PacmObject> a{
      {"x", 1, 5'000, 1, 300.0, 30.0},
      {"y", 2, 5'000, 2, 300.0, 30.0},
  };
  std::vector<core::PacmObject> b{
      {"x", 1, 5'000, 2, 300.0, 30.0},
      {"y", 2, 5'000, 1, 300.0, 30.0},
  };
  const auto da = solver.select_evictions(a, 5'000, {{1, 1.0}, {2, 1.0}});
  const auto db = solver.select_evictions(b, 5'000, {{1, 1.0}, {2, 1.0}});
  ASSERT_EQ(da.evict.size(), 1u);
  ASSERT_EQ(db.evict.size(), 1u);
  EXPECT_EQ(da.evict[0], db.evict[0]);
}

TEST(PacmAblation, WithPriorityFlippingChangesOutcome) {
  core::ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  core::PacmSolver solver(config);
  std::vector<core::PacmObject> a{
      {"x", 1, 5'000, 1, 300.0, 30.0},
      {"y", 2, 5'000, 2, 300.0, 30.0},
  };
  const auto decision = solver.select_evictions(a, 5'000, {{1, 1.0}, {2, 1.0}});
  ASSERT_EQ(decision.evict.size(), 1u);
  EXPECT_EQ(decision.evict[0], "x");  // the low-priority object goes
}

TEST(PacmAblation, NoFairnessSkipsRepair) {
  core::ApeConfig config;
  config.cache_capacity_bytes = 120'000;
  config.fairness_theta = 0.05;  // aggressively tight
  config.pacm_use_fairness = false;
  core::PacmSolver solver(config);

  std::vector<core::PacmObject> cached;
  for (int i = 0; i < 4; ++i) {
    cached.push_back({"big" + std::to_string(i), 1, 25'000, 2, 1000.0, 50.0});
  }
  cached.push_back({"small", 2, 2'000, 1, 100.0, 10.0});
  const auto decision = solver.select_evictions(cached, 10'000, {{1, 3.0}, {2, 3.0}});
  EXPECT_EQ(decision.repair_rounds, 0);
}

TEST(PacmAblation, ForceGreedyReportsInexact) {
  core::ApeConfig config;
  config.cache_capacity_bytes = 50'000;
  config.pacm_force_greedy = true;
  core::PacmSolver solver(config);
  std::vector<core::PacmObject> cached{
      {"a", 1, 20'000, 1, 100.0, 30.0},
      {"b", 2, 20'000, 1, 100.0, 30.0},
      {"c", 3, 20'000, 1, 100.0, 30.0},
  };
  const auto decision = solver.select_evictions(cached, 20'000, {});
  EXPECT_FALSE(decision.exact);
}

TEST(PacmAblation, PolicyOverrideSelectsGdsfOnAp) {
  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  params.policy_override = core::ApRuntime::Policy::Gdsf;
  testbed::Testbed bed(params);
  EXPECT_EQ(bed.ap().data_cache().policy().name(), "GDSF");
}

// -------------------------------------------------------- revalidation

struct RevalidationFixture : ::testing::Test {
  std::unique_ptr<testbed::Testbed> bed;
  testbed::Testbed::Client* client = nullptr;
  workload::AppSpec app;

  void build(bool revalidation) {
    app.name = "reval";
    app.id = 80;
    app.domain = "api.reval.example";
    workload::RequestSpec r;
    r.name = "obj";
    r.url = "http://api.reval.example/obj";
    r.size_bytes = 40'000;
    r.ttl_minutes = 1;  // expires quickly
    r.priority = 2;
    r.retrieval_latency = sim::milliseconds(40);
    app.requests.push_back(std::move(r));

    testbed::TestbedParams params;
    params.system = testbed::System::ApeCache;
    params.ape.enable_revalidation = revalidation;
    bed = std::make_unique<testbed::Testbed>(params);
    bed->host_app(app);
    client = &bed->add_client("phone");
    for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
  }

  core::ClientRuntime::FetchResult fetch() {
    core::ClientRuntime::FetchResult out;
    client->runtime->fetch(app.requests[0].url,
                           [&out](core::ClientRuntime::FetchResult r) { out = std::move(r); });
    bed->simulator().run();
    return out;
  }
};

TEST_F(RevalidationFixture, RefreshesExpiredEntryWith304) {
  build(true);
  ASSERT_TRUE(fetch().success);  // delegation, full pull
  bed->simulator().run_until(bed->simulator().now() + sim::minutes(2.0));  // expire

  const auto refreshed = fetch();
  ASSERT_TRUE(refreshed.success);
  EXPECT_EQ(bed->ap().revalidations_performed(), 1u);
  // The refreshed copy is live again: the next fetch is a plain hit.
  const auto hit = fetch();
  EXPECT_EQ(hit.source, core::ClientRuntime::Source::ApCache);
}

TEST_F(RevalidationFixture, RevalidationIsCheaperThanFullPull) {
  build(true);
  const auto cold = fetch();  // full origin pull (incl. 40 ms backend)
  bed->simulator().run_until(bed->simulator().now() + sim::minutes(2.0));
  const auto reval = fetch();  // 304 path: no backend latency, no body
  ASSERT_TRUE(cold.success);
  ASSERT_TRUE(reval.success);
  EXPECT_LT(sim::to_millis(reval.retrieval_latency),
            sim::to_millis(cold.retrieval_latency) * 0.7);
}

TEST_F(RevalidationFixture, DisabledByDefaultDoesFullPull) {
  build(false);
  ASSERT_TRUE(fetch().success);
  bed->simulator().run_until(bed->simulator().now() + sim::minutes(2.0));
  ASSERT_TRUE(fetch().success);
  EXPECT_EQ(bed->ap().revalidations_performed(), 0u);
  EXPECT_EQ(bed->ap().delegations_performed(), 2u);
}

// -------------------------------------------------------- multi-client

TEST(MultiClient, ThreeDevicesShareTheApCache) {
  workload::GeneratorParams gen;
  gen.app_count = 6;
  sim::Rng rng(5);
  const auto apps = workload::generate_apps(gen, rng);

  testbed::WorkloadConfig config;
  config.duration = sim::minutes(10.0);
  config.client_count = 3;  // Fig. 9: two phones + an emulator
  config.seed = 5;

  const auto result = testbed::run_system(testbed::System::ApeCache,
                                          testbed::TestbedParams{}, apps, config);
  EXPECT_GT(result.app_runs, 50u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(result.hit_ratio(), 0.4);
}

TEST(MultiClient, ResultsComparableToSingleClient) {
  workload::GeneratorParams gen;
  gen.app_count = 6;
  sim::Rng rng(6);
  const auto apps = workload::generate_apps(gen, rng);

  testbed::WorkloadConfig config;
  config.duration = sim::minutes(10.0);
  config.seed = 6;

  auto single = config;
  single.client_count = 1;
  auto triple = config;
  triple.client_count = 3;

  const auto one = testbed::run_system(testbed::System::ApeCache,
                                       testbed::TestbedParams{}, apps, single);
  const auto three = testbed::run_system(testbed::System::ApeCache,
                                         testbed::TestbedParams{}, apps, triple);
  // Same workload, same AP cache: latencies should be in the same ballpark
  // (the AP cache is shared, so distribution across devices changes little).
  EXPECT_NEAR(one.app_latency_ms.mean(), three.app_latency_ms.mean(),
              one.app_latency_ms.mean() * 0.35);
}


// ----------------------------------------------------------- prefetch

TEST(Prefetch, WarmsTheApCacheForADomain) {
  workload::AppSpec app = workload::make_movie_trailer();
  testbed::TestbedParams params;
  params.system = testbed::System::ApeCache;
  testbed::Testbed bed(params);
  bed.host_app(app);
  auto& phone = bed.add_client("phone");
  for (auto& spec : app.cacheables()) phone.runtime->register_cacheable(spec);

  std::size_t warmed = 0;
  phone.runtime->prefetch(app.domain, [&warmed](std::size_t n) { warmed = n; });
  bed.simulator().run();
  EXPECT_EQ(warmed, app.requests.size());
  EXPECT_EQ(bed.ap().data_cache().entry_count(), app.requests.size());

  // Foreground run after prefetch: every object is an AP hit.
  testbed::AppDriver driver(bed.simulator(), app, *phone.fetcher);
  testbed::AppRunResult result;
  driver.run_once([&result](testbed::AppRunResult r) { result = std::move(r); });
  bed.simulator().run();
  for (const auto& obj : result.objects) {
    EXPECT_EQ(obj.result.source, core::ClientRuntime::Source::ApCache)
        << obj.request_name;
  }
  EXPECT_LT(sim::to_millis(result.app_latency), 45.0);
}

TEST(Prefetch, EmptyDomainWarmsEverything) {
  workload::AppSpec movie = workload::make_movie_trailer();
  workload::AppSpec home = workload::make_virtual_home();
  testbed::Testbed bed(testbed::TestbedParams{});
  bed.host_app(movie);
  bed.host_app(home);
  auto& phone = bed.add_client("phone");
  for (auto& spec : movie.cacheables()) phone.runtime->register_cacheable(spec);
  for (auto& spec : home.cacheables()) phone.runtime->register_cacheable(spec);

  std::size_t warmed = 0;
  phone.runtime->prefetch("", [&warmed](std::size_t n) { warmed = n; });
  bed.simulator().run();
  EXPECT_EQ(warmed, movie.requests.size() + home.requests.size());
}

TEST(Prefetch, NoRegistrationsCompletesWithZero) {
  testbed::Testbed bed(testbed::TestbedParams{});
  auto& phone = bed.add_client("phone");
  bool called = false;
  phone.runtime->prefetch("nothing.example", [&called](std::size_t n) {
    called = true;
    EXPECT_EQ(n, 0u);
  });
  bed.simulator().run();
  EXPECT_TRUE(called);
}

// ---------------------------------------------------- negative caching

TEST(NegativeCache, NxDomainAnsweredFromCacheSecondTime) {
  testbed::Testbed bed(testbed::TestbedParams{});
  // Delegate a zone so the LDNS can reach an ADNS that NXDOMAINs.
  workload::AppSpec app = workload::make_movie_trailer();
  bed.host_app(app);
  auto& phone = bed.add_client("phone");

  auto lookup_missing = [&](double* ms) {
    bool done = false;
    const sim::Time start = bed.simulator().now();
    phone.runtime->regular_dns_lookup(
        "missing.api.movietrailer.app",
        [&](Result<dns::DnsMessage> r, sim::Duration d) {
          done = true;
          if (ms) *ms = sim::to_millis(d);
          // The AP turns the NXDOMAIN into ServFail for A lookups; either
          // way no address comes back.
          (void)r;
          (void)start;
        });
    bed.simulator().run();
    EXPECT_TRUE(done);
  };

  double cold = 0.0, warm = 0.0;
  lookup_missing(&cold);
  const std::size_t upstream_after_first = bed.ldns().upstream_queries();
  lookup_missing(&warm);
  // Second query must not recurse again: the negative cache answers.
  EXPECT_EQ(bed.ldns().upstream_queries(), upstream_after_first);
  EXPECT_EQ(bed.ldns().negative_cache_size(), 1u);
}

TEST(NegativeCache, ExpiresAfterNegativeTtl) {
  testbed::Testbed bed(testbed::TestbedParams{});
  workload::AppSpec app = workload::make_movie_trailer();
  bed.host_app(app);
  bed.ldns().set_negative_ttl(sim::seconds(5.0));
  auto& phone = bed.add_client("phone");

  auto lookup_missing = [&] {
    bool done = false;
    phone.runtime->regular_dns_lookup("gone.api.movietrailer.app",
                                      [&](Result<dns::DnsMessage>, sim::Duration) {
                                        done = true;
                                      });
    bed.simulator().run();
    EXPECT_TRUE(done);
  };
  lookup_missing();
  const auto first = bed.ldns().upstream_queries();
  bed.simulator().run_until(bed.simulator().now() + sim::seconds(6.0));
  lookup_missing();
  EXPECT_GT(bed.ldns().upstream_queries(), first);  // re-recursed after expiry
}

}  // namespace
}  // namespace ape

// Cross-cutting property and stress suites: randomized inputs, invariant
// checks, structured round trips — the guarantees every module must keep
// regardless of workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cache/object_store.hpp"
#include "core/pacm.hpp"
#include "core/pacm_policy.hpp"
#include "dns/codec.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ape {
namespace {

// ------------------------------------------------------ simulator storm

class SimulatorStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorStorm, TimeNeverRunsBackwardsUnderRandomScheduling) {
  sim::Simulator simulator;
  sim::Rng rng(GetParam());
  sim::Time last_seen{};
  std::size_t fired = 0;

  // Seed events that recursively schedule more events with random delays
  // and random cancellations.
  std::vector<sim::Simulator::EventId> cancellable;
  std::function<void(int)> chain = [&](int depth) {
    EXPECT_GE(simulator.now(), last_seen);
    last_seen = simulator.now();
    ++fired;
    if (depth <= 0) return;
    const int fanout = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < fanout; ++i) {
      const auto id = simulator.schedule_in(
          sim::microseconds(rng.uniform_int(0, 5000)), [&chain, depth] { chain(depth - 1); });
      if (rng.bernoulli(0.2)) cancellable.push_back(id);
    }
    if (!cancellable.empty() && rng.bernoulli(0.3)) {
      simulator.cancel(cancellable.back());
      cancellable.pop_back();
    }
  };
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_in(sim::microseconds(rng.uniform_int(0, 1000)), [&chain] { chain(6); });
  }
  simulator.run();
  EXPECT_GT(fired, 10u);
  EXPECT_EQ(simulator.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorStorm, ::testing::Values(1, 7, 42, 1337));

// -------------------------------------------------- topology invariants

class TopologyProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void build_random(net::Topology& topo, std::size_t nodes, sim::Rng& rng) {
    std::vector<net::NodeId> ids;
    for (std::size_t i = 0; i < nodes; ++i) {
      ids.push_back(topo.add_node("n" + std::to_string(i)));
    }
    // A spanning chain guarantees connectivity, plus random chords.
    for (std::size_t i = 1; i < nodes; ++i) {
      topo.add_link(ids[i - 1], ids[i],
                    net::LinkSpec{sim::microseconds(rng.uniform_int(100, 20'000)), 1e9});
    }
    const std::size_t chords = nodes;
    for (std::size_t c = 0; c < chords; ++c) {
      const auto a = ids[static_cast<std::size_t>(rng.uniform_int(0, nodes - 1))];
      const auto b = ids[static_cast<std::size_t>(rng.uniform_int(0, nodes - 1))];
      if (a != b) {
        topo.add_link(a, b,
                      net::LinkSpec{sim::microseconds(rng.uniform_int(100, 20'000)), 1e9});
      }
    }
  }
};

TEST_P(TopologyProperty, ShortestPathsAreSymmetricAndTriangular) {
  net::Topology topo;
  sim::Rng rng(GetParam());
  constexpr std::size_t kNodes = 12;
  build_random(topo, kNodes, rng);

  for (std::uint32_t a = 0; a < kNodes; ++a) {
    for (std::uint32_t b = 0; b < kNodes; ++b) {
      const auto ab = topo.path(net::NodeId{a}, net::NodeId{b});
      const auto ba = topo.path(net::NodeId{b}, net::NodeId{a});
      ASSERT_TRUE(ab.has_value());
      ASSERT_TRUE(ba.has_value());
      // Symmetric links -> symmetric distances.
      EXPECT_EQ(ab->one_way_latency, ba->one_way_latency);
      // Triangle inequality through every intermediate node.
      for (std::uint32_t via = 0; via < kNodes; ++via) {
        const auto av = topo.path(net::NodeId{a}, net::NodeId{via});
        const auto vb = topo.path(net::NodeId{via}, net::NodeId{b});
        ASSERT_TRUE(av && vb);
        EXPECT_LE(ab->one_way_latency.count(),
                  av->one_way_latency.count() + vb->one_way_latency.count());
      }
    }
  }
}

TEST_P(TopologyProperty, SelfDistanceZeroAndHopsConsistent) {
  net::Topology topo;
  sim::Rng rng(GetParam() + 100);
  build_random(topo, 10, rng);
  for (std::uint32_t a = 0; a < 10; ++a) {
    const auto self = topo.path(net::NodeId{a}, net::NodeId{a});
    ASSERT_TRUE(self.has_value());
    EXPECT_EQ(self->one_way_latency.count(), 0);
    EXPECT_EQ(self->hops, 0u);
    for (std::uint32_t b = 0; b < 10; ++b) {
      if (a == b) continue;
      const auto p = topo.path(net::NodeId{a}, net::NodeId{b});
      ASSERT_TRUE(p.has_value());
      EXPECT_GE(p->hops, 1u);
      EXPECT_GT(p->one_way_latency.count(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyProperty, ::testing::Values(3, 11, 29, 71));

// ------------------------------------------------ DNS structured fuzzing

class DnsRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DnsRoundTripProperty, RandomMessagesSurviveTheWire) {
  sim::Rng rng(GetParam());
  auto random_name = [&rng] {
    std::string text;
    const int labels = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < labels; ++i) {
      if (i) text += '.';
      const int len = static_cast<int>(rng.uniform_int(1, 12));
      for (int j = 0; j < len; ++j) {
        text += static_cast<char>('a' + rng.uniform_int(0, 25));
      }
    }
    return dns::DnsName::parse(text).value();
  };

  for (int round = 0; round < 20; ++round) {
    dns::DnsMessage m;
    m.header.id = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    m.header.qr = rng.bernoulli(0.5);
    m.header.rd = rng.bernoulli(0.5);
    m.header.aa = rng.bernoulli(0.3);
    m.header.rcode = static_cast<dns::Rcode>(rng.uniform_int(0, 5));

    const int questions = static_cast<int>(rng.uniform_int(1, 3));
    for (int q = 0; q < questions; ++q) {
      m.questions.push_back(
          dns::Question{random_name(), dns::RrType::A, dns::RrClass::In});
    }
    const int answers = static_cast<int>(rng.uniform_int(0, 5));
    for (int a = 0; a < answers; ++a) {
      if (rng.bernoulli(0.5)) {
        m.answers.push_back(dns::make_a_record(
            random_name(),
            net::IpAddress{static_cast<std::uint32_t>(rng.next_u64())},
            static_cast<std::uint32_t>(rng.uniform_int(0, 86400))));
      } else {
        m.answers.push_back(dns::make_cname_record(random_name(), random_name(),
                                                   static_cast<std::uint32_t>(
                                                       rng.uniform_int(0, 3600))));
      }
    }

    const auto decoded = dns::decode(dns::encode(m));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().header.id, m.header.id);
    EXPECT_EQ(decoded.value().header.qr, m.header.qr);
    EXPECT_EQ(decoded.value().header.rcode, m.header.rcode);
    EXPECT_EQ(decoded.value().questions, m.questions);
    EXPECT_EQ(decoded.value().answers, m.answers);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsRoundTripProperty,
                         ::testing::Values(5, 17, 101, 257, 65537));

// ------------------------------------------------------ PACM invariants

class PacmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacmProperty, DominatedTwinIsNeverPreferred) {
  // Pairs of objects identical except one attribute where A strictly
  // dominates B; if exactly one of a pair survives, it must be A.
  core::ApeConfig config;
  config.cache_capacity_bytes = 60'000;
  core::PacmSolver solver(config);
  sim::Rng rng(GetParam());

  std::vector<core::PacmObject> objects;
  std::vector<std::pair<std::string, std::string>> dominant_pairs;  // (better, worse)
  for (int p = 0; p < 6; ++p) {
    core::PacmObject base;
    base.app = static_cast<core::AppId>(p % 3);
    base.size_bytes = static_cast<std::size_t>(rng.uniform_int(4'000, 12'000));
    base.priority = 1;
    base.remaining_ttl_s = rng.uniform_real(60.0, 600.0);
    base.fetch_latency_ms = rng.uniform_real(20.0, 50.0);

    core::PacmObject better = base;
    better.key = "better" + std::to_string(p);
    core::PacmObject worse = base;
    worse.key = "worse" + std::to_string(p);
    switch (p % 3) {
      case 0: better.priority = 2; break;
      case 1: better.remaining_ttl_s = base.remaining_ttl_s * 2.0; break;
      case 2: better.fetch_latency_ms = base.fetch_latency_ms * 2.0; break;
    }
    objects.push_back(better);
    objects.push_back(worse);
    dominant_pairs.emplace_back(better.key, worse.key);
  }

  const auto decision = solver.select_evictions(
      objects, /*incoming=*/20'000, {{0, 2.0}, {1, 2.0}, {2, 2.0}});

  const auto evicted = [&](const std::string& key) {
    return std::find(decision.evict.begin(), decision.evict.end(), key) !=
           decision.evict.end();
  };
  for (const auto& [better, worse] : dominant_pairs) {
    // "Better evicted while worse kept" must never happen.  (Both kept or
    // both evicted is fine; knapsack may prefer the *smaller* of unequal
    // pairs, but these twins share their size.)
    EXPECT_FALSE(evicted(better) && !evicted(worse))
        << better << " evicted but " << worse << " kept";
  }
}

TEST_P(PacmProperty, StoreWithPacmNeverExceedsCapacityUnderChurn) {
  sim::Simulator simulator;
  core::ApeConfig config;
  config.cache_capacity_bytes = 100'000;
  core::FrequencyTracker freq(config.alpha, config.frequency_window);
  cache::CacheStore store(config.cache_capacity_bytes,
                          std::make_unique<core::PacmPolicy>(config, simulator, freq));
  sim::Rng rng(GetParam());

  for (int op = 0; op < 600; ++op) {
    const sim::Time now{sim::seconds(static_cast<double>(op))};
    const auto app = static_cast<core::AppId>(rng.uniform_int(0, 9));
    freq.record_request(app, now);

    cache::CacheEntry entry;
    entry.key = "k" + std::to_string(rng.uniform_int(0, 60));
    entry.size_bytes = static_cast<std::size_t>(rng.uniform_int(500, 30'000));
    entry.app_id = app;
    entry.priority = rng.bernoulli(0.4) ? 2 : 1;
    entry.expires = now + sim::seconds(rng.uniform_real(5.0, 600.0));
    entry.fetch_latency = sim::milliseconds(rng.uniform_real(20.0, 80.0));
    store.insert(std::move(entry), now);

    ASSERT_LE(store.used_bytes(), store.capacity_bytes());
    std::size_t total = 0;
    store.for_each([&](const cache::CacheEntry& e) { total += e.size_bytes; });
    ASSERT_EQ(total, store.used_bytes());
  }
  EXPECT_GT(store.evictions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacmProperty, ::testing::Values(2, 13, 47, 199));

// ----------------------------------------------- fairness sanity bounds

TEST(FairnessProperty, RepairNeverIncreasesFairnessAboveUnconstrained) {
  // With theta = 1.0 (never binding) the solver must behave as plain
  // knapsack; tightening theta can only lower (or keep) the final Gini.
  sim::Rng rng(31);
  std::vector<core::PacmObject> objects;
  for (int i = 0; i < 24; ++i) {
    core::PacmObject o;
    o.key = "o" + std::to_string(i);
    o.app = static_cast<core::AppId>(i % 4);
    o.size_bytes = static_cast<std::size_t>(rng.uniform_int(2'000, 20'000));
    o.priority = 1 + static_cast<int>(rng.uniform_int(0, 1));
    o.remaining_ttl_s = rng.uniform_real(30.0, 600.0);
    o.fetch_latency_ms = rng.uniform_real(20.0, 50.0);
    // Make app 0 hoard.
    if (o.app == 0) o.size_bytes *= 3;
    objects.push_back(std::move(o));
  }
  const std::vector<std::pair<core::AppId, double>> freqs{
      {0, 2.0}, {1, 2.0}, {2, 2.0}, {3, 2.0}};

  core::ApeConfig loose;
  loose.cache_capacity_bytes = 120'000;
  loose.fairness_theta = 1.0;
  core::ApeConfig tight = loose;
  tight.fairness_theta = 0.25;

  const auto unconstrained = core::PacmSolver(loose).select_evictions(objects, 10'000, freqs);
  const auto constrained = core::PacmSolver(tight).select_evictions(objects, 10'000, freqs);

  EXPECT_EQ(unconstrained.repair_rounds, 0);
  if (constrained.fairness_satisfied) {
    EXPECT_LE(constrained.fairness, 0.25 + 1e-9);
  }
  EXPECT_LE(constrained.kept_utility, unconstrained.kept_utility + 1e-9);
}

}  // namespace
}  // namespace ape

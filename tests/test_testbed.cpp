// The testbed fixture and app driver themselves: topology wiring, DNS
// publication, DAG execution semantics (diamonds, critical-path gating),
// and the experiment harness.
#include <gtest/gtest.h>

#include "testbed/experiment.hpp"
#include "workload/real_apps.hpp"

namespace ape::testbed {
namespace {

// ------------------------------------------------------------- testbed

TEST(TestbedWiring, CalibratedPathsMatchFig9) {
  TestbedParams params;
  Testbed bed(params);
  auto& topo = bed.network().topology();

  const auto ap = net::NodeId{0};
  const auto edge_node = *bed.network().owner_of(bed.edge_ip());
  const auto edge_path = topo.path(ap, edge_node);
  ASSERT_TRUE(edge_path.has_value());
  EXPECT_EQ(edge_path->hops, params.edge_hops);
  EXPECT_NEAR(sim::to_millis(edge_path->rtt()), 15.0, 1.0);  // ~2x7.5 ms

  // Clients sit one WiFi hop from the AP.
  auto& client = bed.add_client("probe");
  const auto wifi = topo.path(client.node, ap);
  ASSERT_TRUE(wifi.has_value());
  EXPECT_EQ(wifi->hops, 1u);
}

TEST(TestbedWiring, HostAppPublishesDomain) {
  Testbed bed(TestbedParams{});
  const auto app = workload::make_movie_trailer();
  bed.host_app(app);

  // The edge must hold every object...
  for (const auto& object : app.objects()) {
    EXPECT_NE(bed.edge().catalog().find(object.base_url), nullptr);
  }
  // ...and the domain must resolve through the AP to the edge.
  auto& client = bed.add_client("phone");
  core::ClientRuntime::FetchResult out;
  client.runtime->fetch_via_edge(app.requests[0].url,
                                 [&out](core::ClientRuntime::FetchResult r) { out = r; });
  bed.simulator().run();
  EXPECT_TRUE(out.success);
}

TEST(TestbedWiring, ClientsGetDistinctAddressesAndPorts) {
  Testbed bed(TestbedParams{});
  auto& a = bed.add_client("a");
  auto& b = bed.add_client("b");
  EXPECT_NE(a.node, b.node);
  EXPECT_NE(bed.network().ip_of(a.node), bed.network().ip_of(b.node));
}

TEST(TestbedWiring, WiCacheComponentsOnlyForWiCacheSystem) {
  Testbed ape_bed(TestbedParams{});
  EXPECT_EQ(ape_bed.wicache_controller(), nullptr);
  EXPECT_EQ(ape_bed.wicache_agent(), nullptr);

  TestbedParams params;
  params.system = System::WiCache;
  Testbed wi_bed(params);
  EXPECT_NE(wi_bed.wicache_controller(), nullptr);
  EXPECT_NE(wi_bed.wicache_agent(), nullptr);
}

TEST(TestbedWiring, FetcherMatchesSystem) {
  for (auto [system, name] : {std::pair{System::ApeCache, "APE-CACHE"},
                              std::pair{System::ApeCacheLru, "APE-CACHE-LRU"},
                              std::pair{System::WiCache, "Wi-Cache"},
                              std::pair{System::EdgeCache, "Edge Cache"}}) {
    TestbedParams params;
    params.system = system;
    Testbed bed(params);
    EXPECT_EQ(bed.add_client("c").fetcher->system_name(), name);
  }
}

TEST(TestbedWiring, PassthroughChargesApCpu) {
  Testbed bed(TestbedParams{});
  const auto before = bed.ap().cpu().busy_time();
  bed.account_passthrough(100'000);
  bed.simulator().run();
  EXPECT_GT(bed.ap().cpu().busy_time(), before + sim::milliseconds(5));
}

// ----------------------------------------------------------- app driver

struct DriverFixture : ::testing::Test {
  std::unique_ptr<Testbed> bed;
  Testbed::Client* client = nullptr;

  void host(const workload::AppSpec& app) {
    bed = std::make_unique<Testbed>(TestbedParams{});
    bed->host_app(app);
    client = &bed->add_client("phone");
    for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
  }

  AppRunResult run(const workload::AppSpec& app) {
    AppRunResult out;
    AppDriver driver(bed->simulator(), app, *client->fetcher);
    driver.run_once([&out](AppRunResult r) { out = std::move(r); });
    bed->simulator().run();
    return out;
  }
};

workload::RequestSpec request_named(const std::string& domain, const std::string& name,
                                    int priority, std::vector<std::size_t> deps) {
  workload::RequestSpec r;
  r.name = name;
  r.url = "http://" + domain + "/" + name;
  r.size_bytes = 5'000;
  r.ttl_minutes = 30;
  r.priority = priority;
  r.retrieval_latency = sim::milliseconds(25);
  r.depends_on = std::move(deps);
  return r;
}

TEST_F(DriverFixture, ExecutesAllRequestsOnce) {
  const auto app = workload::make_movie_trailer();
  host(app);
  const auto result = run(app);
  EXPECT_EQ(result.fetches, app.requests.size());
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.objects.size(), app.requests.size());
}

TEST_F(DriverFixture, RespectsDiamondDependencies) {
  workload::AppSpec app;
  app.name = "diamond";
  app.id = 90;
  app.domain = "api.diamond.example";
  app.requests.push_back(request_named(app.domain, "root", 2, {}));
  app.requests.push_back(request_named(app.domain, "left", 1, {0}));
  app.requests.push_back(request_named(app.domain, "right", 1, {0}));
  app.requests.push_back(request_named(app.domain, "join", 2, {1, 2}));
  ASSERT_TRUE(app.valid());
  host(app);

  const auto result = run(app);
  EXPECT_EQ(result.fetches, 4u);
  // join must have been fetched last: its record appears after both
  // left and right in completion order.
  std::size_t join_pos = 99, left_pos = 99, right_pos = 99;
  for (std::size_t i = 0; i < result.objects.size(); ++i) {
    if (result.objects[i].request_name == "join") join_pos = i;
    if (result.objects[i].request_name == "left") left_pos = i;
    if (result.objects[i].request_name == "right") right_pos = i;
  }
  EXPECT_GT(join_pos, left_pos);
  EXPECT_GT(join_pos, right_pos);
}

TEST_F(DriverFixture, CriticalPathGatesAppLatencyNotMakespan) {
  // Critical chain (prio 2) is fast once cached; the slow low-priority
  // sibling extends the makespan but not the app latency.
  workload::AppSpec app;
  app.name = "gating";
  app.id = 91;
  app.domain = "api.gating.example";
  app.requests.push_back(request_named(app.domain, "id", 2, {}));
  auto slow = request_named(app.domain, "slow-extra", 1, {0});
  slow.size_bytes = 400'000;  // cacheable but heavy
  slow.retrieval_latency = sim::milliseconds(45);
  app.requests.push_back(std::move(slow));
  app.requests.push_back(request_named(app.domain, "hero", 2, {0}));
  host(app);

  run(app);  // warm-up (everything delegated)
  bed->simulator().run_until(bed->simulator().now() + sim::seconds(5.0));
  const auto warm = run(app);
  EXPECT_EQ(warm.failures, 0u);
  EXPECT_LE(warm.app_latency, warm.full_makespan);
  // Hero path is two AP hits (~30 ms); the 400 kB sibling takes longer to
  // move over WiFi.
  EXPECT_LT(sim::to_millis(warm.app_latency), 45.0);
}

TEST_F(DriverFixture, AppWithoutCriticalPathGatesOnEverything) {
  workload::AppSpec app;
  app.name = "flat";
  app.id = 92;
  app.domain = "api.flat.example";
  app.requests.push_back(request_named(app.domain, "a", 1, {}));
  app.requests.push_back(request_named(app.domain, "b", 1, {}));
  host(app);
  const auto result = run(app);
  EXPECT_EQ(result.app_latency, result.full_makespan);
}

TEST_F(DriverFixture, ConcurrentRunsOfTheSameDriverAreIndependent) {
  const auto app = workload::make_virtual_home();
  host(app);
  AppDriver driver(bed->simulator(), app, *client->fetcher);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    driver.run_once([&done](AppRunResult r) {
      EXPECT_EQ(r.failures, 0u);
      ++done;
    });
  }
  bed->simulator().run();
  EXPECT_EQ(done, 5);
}

// ------------------------------------------------------------ harness

TEST(ExperimentHarness, CollectsPerSourceHistograms) {
  std::vector<workload::AppSpec> apps{workload::make_movie_trailer()};
  WorkloadConfig config;
  config.duration = sim::minutes(5.0);
  const auto result = run_system(System::ApeCache, TestbedParams{}, apps, config);
  EXPECT_EQ(result.system, "APE-CACHE");
  EXPECT_EQ(result.object_fetches,
            result.ap_hit_lookup_ms.count() + result.edge_lookup_ms.count() +
                (result.object_fetches - result.ap_hit_lookup_ms.count() -
                 result.edge_lookup_ms.count()));
  EXPECT_GT(result.ap_hits, 0u);
  EXPECT_GT(result.high_priority_fetches, 0u);
}

TEST(ExperimentHarness, SeedChangesArrivals) {
  std::vector<workload::AppSpec> apps{workload::make_movie_trailer()};
  WorkloadConfig a, b;
  a.duration = b.duration = sim::minutes(5.0);
  a.seed = 1;
  b.seed = 2;
  const auto ra = run_system(System::ApeCache, TestbedParams{}, apps, a);
  const auto rb = run_system(System::ApeCache, TestbedParams{}, apps, b);
  EXPECT_NE(ra.app_latency_ms.sum(), rb.app_latency_ms.sum());
}

}  // namespace
}  // namespace ape::testbed

// Observability layer: registry semantics, trace-ring bounding, export
// schema stability, and the determinism contract (two identically seeded
// runs export byte-identical stable sections).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "testbed/experiment.hpp"
#include "workload/app_generator.hpp"

using namespace ape;

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, CounterAddAndSet) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("ap.cache.hit");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(2);
  EXPECT_EQ(c.value(), 2u);
  // Same name resolves to the same instrument.
  registry.counter("ap.cache.hit").add();
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(registry.counters().size(), 1u);
}

TEST(MetricsRegistry, GaugeTracksValueAndHighWater) {
  obs::MetricsRegistry registry;
  auto& g = registry.gauge("sim.queue.pending");
  g.set(10.0);
  g.set(25.0);
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_DOUBLE_EQ(g.max(), 25.0);
}

TEST(MetricsRegistry, GaugeHighWaterWorksForNegativeValues) {
  obs::MetricsRegistry registry;
  auto& g = registry.gauge("g");
  g.set(-5.0);
  EXPECT_DOUBLE_EQ(g.max(), -5.0);  // first write seeds the max
  g.set(-9.0);
  EXPECT_DOUBLE_EQ(g.value(), -9.0);
  EXPECT_DOUBLE_EQ(g.max(), -5.0);
}

TEST(MetricsRegistry, HistogramRecordsThroughStatsHistogram) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("client.total_ms", "ms");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
}

TEST(MetricsRegistry, ReferencesStayStableAcrossInsertions) {
  obs::MetricsRegistry registry;
  auto& first = registry.counter("a");
  for (int i = 0; i < 100; ++i) registry.counter("c" + std::to_string(i));
  first.add(3);
  EXPECT_EQ(registry.counter("a").value(), 3u);
}

TEST(MetricsRegistry, MergePrefixesEveryInstrument) {
  obs::MetricsRegistry inner;
  inner.counter("hits").add(7);
  inner.gauge("depth").set(3.0);
  inner.gauge("depth").set(1.0);  // max 3, value 1
  inner.histogram("lat", "ms").record(5.0);

  obs::MetricsRegistry outer;
  outer.merge(inner, "ape.");
  EXPECT_EQ(outer.counter("ape.hits").value(), 7u);
  EXPECT_DOUBLE_EQ(outer.gauge("ape.depth").value(), 1.0);
  EXPECT_DOUBLE_EQ(outer.gauge("ape.depth").max(), 3.0);
  EXPECT_EQ(outer.histograms().at("ape.lat").histogram.count(), 1u);
}

TEST(MetricsRegistry, VolatileInstrumentsKeepTheirTag) {
  obs::MetricsRegistry registry;
  registry.gauge("pacm.solve_us", obs::Volatility::Volatile).set(12.5);
  registry.gauge("stable", obs::Volatility::Stable).set(1.0);
  EXPECT_EQ(registry.gauges().at("pacm.solve_us").volatility,
            obs::Volatility::Volatile);
  EXPECT_EQ(registry.gauges().at("stable").volatility, obs::Volatility::Stable);
}

// --- TraceLog -------------------------------------------------------------

TEST(TraceLog, RecordsInOrderBelowCapacity) {
  obs::TraceLog log(8);
  log.record(sim::Time{sim::seconds(1.0)}, "ap", "hit", "k1");
  log.record(sim::Time{sim::seconds(2.0)}, "pacm", "solve", "k2", "exact");
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].component, "ap");
  EXPECT_EQ(events[0].kind, "hit");
  EXPECT_EQ(events[1].key, "k2");
  EXPECT_EQ(events[1].detail, "exact");
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLog, RingBoundsMemoryAndCountsDropped) {
  obs::TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(sim::Time{sim::seconds(static_cast<double>(i))}, "c",
               "k" + std::to_string(i));
  }
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  // Oldest -> newest, holding the last four records.
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().kind, "k6");
  EXPECT_EQ(events.back().kind, "k9");
}

TEST(TraceLog, DisabledLogDropsSilently) {
  obs::TraceLog log(4);
  log.set_enabled(false);
  log.record(sim::Time{}, "c", "k");
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.recorded(), 0u);
}

TEST(TraceLog, ClearResetsEverything) {
  obs::TraceLog log(2);
  log.record(sim::Time{}, "c", "a");
  log.record(sim::Time{}, "c", "b");
  log.record(sim::Time{}, "c", "c");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

// --- Export ---------------------------------------------------------------

TEST(ObsExport, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(obs::format_double(0.5), "0.5");
  EXPECT_EQ(obs::format_double(3.0), "3");
  EXPECT_EQ(obs::format_double(0.0), "0");
  // Non-finite values degrade to 0 (JSON has no NaN/Inf).
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::infinity()), "0");
}

TEST(ObsExport, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(obs::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ObsExport, JsonContainsSchemaAndAllSections) {
  obs::MetricsRegistry registry;
  registry.counter("hits").add(3);
  registry.gauge("depth").set(2.5);
  registry.histogram("lat", "ms").record(1.0);

  obs::ExportOptions options;
  options.meta["bench"] = "unit";
  const std::string json = obs::to_json(registry, nullptr, options);
  EXPECT_NE(json.find("\"schema\":\"ape.obs.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"meta\":{\"bench\":\"unit\"}"), std::string::npos);
  EXPECT_NE(json.find("\"hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":{\"value\":2.5,\"max\":2.5}"), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"unit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ObsExport, VolatileSectionOnlyOnRequest) {
  obs::MetricsRegistry registry;
  registry.gauge("stable").set(1.0);
  registry.gauge("wall_us", obs::Volatility::Volatile).set(42.0);

  const std::string stable_only = obs::to_json(registry);
  EXPECT_EQ(stable_only.find("wall_us"), std::string::npos);
  EXPECT_NE(stable_only.find("stable"), std::string::npos);

  obs::ExportOptions options;
  options.include_volatile = true;
  const std::string with_volatile = obs::to_json(registry, nullptr, options);
  EXPECT_NE(with_volatile.find("\"volatile\""), std::string::npos);
  EXPECT_NE(with_volatile.find("wall_us"), std::string::npos);
}

TEST(ObsExport, TraceSectionEmitsSimTimeMicros) {
  obs::MetricsRegistry registry;
  obs::TraceLog log(8);
  log.record(sim::Time{sim::seconds(1.5)}, "ap", "hit", "obj", "d");

  obs::ExportOptions options;
  options.include_trace = true;
  const std::string json = obs::to_json(registry, &log, options);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"t_us\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"ap\""), std::string::npos);
}

TEST(ObsExport, CsvEmitsOneRowPerScalar) {
  obs::MetricsRegistry registry;
  registry.counter("hits").add(3);
  registry.gauge("depth").set(2.0);
  std::ostringstream out;
  obs::write_csv(out, registry);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("hits,counter,value,3"), std::string::npos);
  EXPECT_NE(csv.find("depth,gauge,value,2"), std::string::npos);
}

// --- Observer + determinism end-to-end ------------------------------------

TEST(Observer, CountAndEventHelpers) {
  obs::Observer observer(16);
  observer.count("x", 2);
  observer.count("x");
  observer.event(sim::Time{sim::seconds(1.0)}, "ap", "admit", "k");
  EXPECT_EQ(observer.metrics().counter("x").value(), 3u);
  EXPECT_EQ(observer.trace().size(), 1u);
}

namespace {

// A small deterministic run; returns the stable JSON snapshot.
std::string run_snapshot() {
  ape::sim::Rng rng(42);
  workload::GeneratorParams params;
  params.app_count = 5;
  const auto apps = workload::generate_apps(params, rng);

  testbed::WorkloadConfig config;
  config.mean_freq_per_min = 3.0;
  config.duration = sim::minutes(5.0);
  config.seed = 42;

  const auto result = testbed::run_system(testbed::System::ApeCache,
                                          testbed::TestbedParams{}, apps, config);
  return obs::to_json(result.metrics);
}

}  // namespace

TEST(Observer, IdenticallySeededRunsExportByteIdenticalSnapshots) {
  const std::string a = run_snapshot();
  const std::string b = run_snapshot();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // And the run actually produced metrics, not an empty shell.
  EXPECT_NE(a.find("ap.cache."), std::string::npos);
  EXPECT_NE(a.find("sim.events_fired"), std::string::npos);
}

// Fixture: the same violations as the bad_* files, each silenced by an
// ape-lint allowlist annotation — zero findings expected.  Deleting any
// single annotation here (or in src/) makes the lint exit non-zero, which
// is exactly the property the acceptance criteria demand.
#include <chrono>
#include <string>
#include <unordered_map>

namespace fixture {

inline double wall_elapsed() {
  const auto t0 = std::chrono::steady_clock::now();  // ape-lint: allow(wallclock)
  // A comment-only annotation covers the next line:
  // ape-lint: allow(wallclock)
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Snapshotter {
  std::unordered_map<std::string, int> live_counts_;

  int sum() const {
    int total = 0;
    // ape-lint: allow(unordered-iter) -- commutative fold, order-free
    for (const auto& [key, n] : live_counts_) total += n;
    return total;
  }
};

struct Tunables {
  double solver_budget_s = 0.25;  // ape-lint: allow(raw-seconds)
};

}  // namespace fixture

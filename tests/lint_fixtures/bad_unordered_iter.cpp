// Fixture: iteration over unordered containers must fire; keyed lookups and
// ordered-container iteration must not.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Exporter {
  std::unordered_map<std::string, int> hits_by_key_;
  std::unordered_set<int> live_ids_;
  std::map<std::string, int> ordered_hits_;

  int export_all() const {
    int total = 0;
    for (const auto& [key, hits] : hits_by_key_) {  // expect-lint: unordered-iter
      total += hits + static_cast<int>(key.size());
    }
    for (int id : live_ids_) {  // expect-lint: unordered-iter
      total += id;
    }
    for (auto it = hits_by_key_.begin(); it != hits_by_key_.end(); ++it) {  // expect-lint: unordered-iter
      total += it->second;
    }
    // Ordered container: fine.
    for (const auto& [key, hits] : ordered_hits_) {
      total += hits;
    }
    return total;
  }

  // Keyed lookup without iteration: fine.
  int lookup(const std::string& key) const {
    auto it = hits_by_key_.find(key);
    return it == hits_by_key_.end() ? 0 : it->second;
  }
};

}  // namespace fixture

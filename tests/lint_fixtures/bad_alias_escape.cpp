// Fixture: unordered iteration laundered through a local alias.  These were
// FALSE NEGATIVES under the v1 regex engine, which only recognized a
// range-for whose right-hand side *textually* contained `unordered` or a
// known container name — binding the container to `const auto&` first hid
// it completely.  The v2 symbol table resolves the alias one level back to
// its declaration (this is the exact shape of the domain->hash walk that
// feeds the DNS Additional section in src/core/ap_runtime.cpp).
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

using UrlHash = std::uint64_t;

class DomainIndex {
 public:
  std::vector<UrlHash> flags_for(const std::string& domain) {
    std::vector<UrlHash> out;

    // v1 blind spot #1: reference alias to an unordered mapped value.
    const auto& hashes = domain_hashes_[domain];
    for (UrlHash h : hashes) {  // expect-lint: unordered-iter
      out.push_back(h);
    }

    // v1 blind spot #2: alias of a whole unordered member, walked by
    // iterator instead of range-for.
    auto& live = live_hashes_;
    for (auto it = live.begin(); it != live.end(); ++it) {  // expect-lint: unordered-iter
      out.push_back(*it);
    }

    // Aliasing an *ordered* container stays clean: the check fires on what
    // the alias resolves to, not on the aliasing itself.
    const auto& order = insertion_order_;
    for (UrlHash h : order) {
      out.push_back(h);
    }
    return out;
  }

 private:
  std::unordered_map<std::string, std::unordered_set<UrlHash>> domain_hashes_;
  std::unordered_set<UrlHash> live_hashes_;
  std::vector<UrlHash> insertion_order_;
};

}  // namespace fixture

// Fixture: wallclock near-misses — zero findings expected.  The v1 regex
// matcher special-cased these textually; the v2 tokenizer decides from
// token context (what precedes the identifier), and this file pins that
// behavior: user-defined functions and members that merely *contain* or
// *shadow* the name `time` are not wall-clock reads.
#include <cstdint>

namespace fixture {

struct Clock {
  std::int64_t time() const;   // member declaration, not ::time(2)
  std::int64_t clock() const;  // member named clock, not ::clock(3)
};

// Free-function *declaration* named time: the return type sits directly
// before the name, which is how the check tells a declaration from a call.
// (A bare *call* `time(...)` still fires — it is indistinguishable from
// ::time(2) and simulated code has no business making one.)
double time(int zone);

// Identifier that merely ends in `time(`.
std::int64_t busy_time(const Clock& c);

inline std::int64_t sample(const Clock& c, Clock* p) {
  std::int64_t total = 0;
  total += c.time();       // member call through `.`
  total += p->time();      // member call through `->`
  total += p->clock();
  total += busy_time(c);   // suffix near-miss
  return total;
}

}  // namespace fixture

// Fixture: a flash-tier-style journal replay written the *wrong* way, so
// ape-lint provably covers the store subsystem's failure modes.  Replay
// rebuilds the object index that exports and eviction scans iterate —
// walking an unordered index, stamping records with wall-clock time, or
// expressing flash latency in raw seconds would all break byte-identical
// recovery (src/store/flash_tier.cpp does none of these).
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct StoreRecord {
  std::string key;
  std::uint32_t segment = 0;
  std::size_t size_bytes = 0;
};

struct BadStoreReplay {
  // An unordered index: rebuilding state from it is hash-seed dependent.
  std::unordered_map<std::string, StoreRecord> replayed_index_;

  std::size_t checkpoint(std::vector<StoreRecord>& out) const {
    std::size_t bytes = 0;
    // Journal rewrite must emit records in a canonical order; this doesn't.
    for (const auto& [key, rec] : replayed_index_) {  // expect-lint: unordered-iter
      out.push_back(rec);
      bytes += rec.size_bytes;
    }
    return bytes;
  }

  double mount() {
    // Wall-clock recovery stamps differ across replays of the same seed.
    const auto start = std::chrono::steady_clock::now();  // expect-lint: wallclock
    const auto end = std::chrono::steady_clock::now();  // expect-lint: wallclock
    return std::chrono::duration<double>(end - start).count();
  }

  double flash_read_cost(std::size_t bytes) const {
    // Raw seconds instead of sim::Duration for device latency.
    double cost_seconds = static_cast<double>(bytes) / 80e6;  // expect-lint: raw-seconds
    return cost_seconds;
  }
};

}  // namespace fixture

// Fixture: a window-capture path (function named capture*/scrape*) reading
// the MetricsRegistry directly must fire — only the DeltaCursor's advance()
// may consume the registry, or the same increment lands in two windows.
// Reads routed through the cursor, and registry reads in non-capture
// functions, must not fire.
#include <cstdint>
#include <map>
#include <string>

namespace fixture {

struct Counter {
  std::uint64_t value = 0;
};

class MetricsRegistry {
 public:
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Counter>& histograms() const { return counters_; }
  Counter& counter(const std::string& name) { return counters_[name]; }

 private:
  std::map<std::string, Counter> counters_;
};

struct Window {
  std::map<std::string, long long> deltas;
};

class DeltaCursor {
 public:
  Window advance(const MetricsRegistry& registry) {
    Window window;
    for (const auto& [name, counter] : registry.counters()) {
      window.deltas[name] = static_cast<long long>(counter.value);
    }
    return window;
  }
};

inline Window capture_bypassing_cursor(const MetricsRegistry& registry) {
  Window window;
  for (const auto& [name, counter] : registry.counters()) {  // expect-lint: cursor-bypass
    window.deltas[name] = static_cast<long long>(counter.value);
  }
  return window;
}

inline long long scrape_and_resolve(MetricsRegistry& registry) {
  return static_cast<long long>(registry.counter("ap.cache.hit").value);  // expect-lint: cursor-bypass
}

inline Window capture_via_cursor(DeltaCursor& cursor, const MetricsRegistry& registry) {
  return cursor.advance(registry);
}

// Not a capture path: ordinary collection code may read the registry.
inline std::size_t count_counters(const MetricsRegistry& registry) {
  return registry.counters().size();
}

}  // namespace fixture

// Fixture: arena-slot lifetime in deferred callbacks (DESIGN.md §5h/§5i).
// Datagram/Event/Slot/InFlight objects live in freelist-recycled arenas, so
// a lambda handed to a deferred-execution sink (schedule_at, submit,
// bind_udp, ...) must not capture them by reference or raw pointer — the
// slot is recycled before the callback fires.  Copies, `this`, and ids are
// fine, and so is a reference capture inside an immediately-invoked lambda
// that never reaches a sink.
#include <cstdint>
#include <functional>
#include <vector>

namespace fixture {

struct Datagram {
  std::uint64_t id = 0;
  std::uint32_t size = 0;
};

struct FakeSimulator {
  void schedule_at(long when, std::function<void()> fn);
  void submit(std::function<void()> fn);
};

void consume(const Datagram& d);
void consume_id(std::uint64_t id);

class Fabric {
 public:
  void deliver_later(FakeSimulator& sim, std::uint32_t slot) {
    Datagram& dgram = slots_[slot];
    Datagram* parked = &slots_[slot];

    // Default by-reference capture into a deferred sink: everything on this
    // stack frame (including the arena reference) dangles by fire time.
    sim.schedule_at(5, [&] {  // expect-lint: callback-capture
      consume(dgram);
    });

    // Explicit by-reference capture of an arena slot.
    sim.schedule_at(6, [this, &dgram] {  // expect-lint: callback-capture
      consume(dgram);
    });

    // Init-capture taking the address of arena state is the same bug with
    // extra syntax.
    sim.submit([p = &dgram] {  // expect-lint: callback-capture
      consume(*p);
    });

    // Value capture of a raw pointer into the arena: the pointer survives,
    // the pointee is recycled.
    sim.submit([parked] {  // expect-lint: callback-capture
      consume(*parked);
    });

    // Copying the payload out of the slot is the sanctioned pattern...
    Datagram copy = slots_[slot];
    sim.schedule_at(7, [copy] { consume(copy); });

    // ...as is carrying a plain id and re-resolving at fire time.
    std::uint64_t id = dgram.id;
    sim.schedule_at(8, [this, id] { consume_id(id); });

    // A reference capture in a lambda that never reaches a sink runs on this
    // stack frame and is fine.
    auto peek = [&dgram] { return dgram.size; };
    if (peek() > 0) consume(dgram);
  }

 private:
  std::vector<Datagram> slots_;
};

}  // namespace fixture

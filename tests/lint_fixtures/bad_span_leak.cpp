// Fixture: a span context captured from SpanLog::open()/open_root() and
// then never mentioned again must fire — the span can never be closed.
// Contexts that are closed, passed to a helper, or captured must not.
#include <functional>
#include <string>

namespace fixture {

struct TraceContext {
  unsigned long long trace = 0;
  unsigned long long span = 0;
};

class SpanLog {
 public:
  TraceContext open_root(const std::string& name, const std::string& component,
                         const std::string& key, long start);
  TraceContext open(const TraceContext& parent, const std::string& name,
                    const std::string& component, const std::string& key, long start);
  void close(const TraceContext& ctx, long end);
  TraceContext current_context() const;
};

void finish_elsewhere(const TraceContext& ctx);

inline void leaks_root(SpanLog& log) {
  // Note the check is file-scoped: a *distinct* name that never reappears.
  TraceContext leaked = log.open_root("client.request", "client", "app:1", 0);  // expect-lint: span-leak
}

inline void leaks_child(SpanLog& log, const TraceContext& parent) {
  TraceContext child = log.open(  // expect-lint: span-leak
      parent, "dns.query", "client", "example.com", 0);
}

inline void closes_properly(SpanLog& log) {
  TraceContext root = log.open_root("client.request", "client", "app:2", 0);
  log.close(root, 10);
}

inline void hands_off(SpanLog& log) {
  TraceContext span = log.open(log.current_context(), "ap.lookup", "ap", "k", 0);
  finish_elsewhere(span);
}

inline std::function<void()> captures_into_callback(SpanLog& log) {
  TraceContext span = log.open(log.current_context(), "net.connect", "net", "ip", 0);
  return [&log, span]() { log.close(span, 5); };
}

}  // namespace fixture

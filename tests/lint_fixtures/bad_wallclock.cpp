// Fixture: every forbidden wall-clock / ambient-randomness token must fire.
// Not compiled — consumed by ape_lint.py --fixtures (see tests/CMakeLists).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline double sample_everything() {
  std::random_device rd;                                        // expect-lint: wallclock
  std::srand(42);                                               // expect-lint: wallclock
  const int r = std::rand();                                    // expect-lint: wallclock
  const auto t0 = std::chrono::steady_clock::now();             // expect-lint: wallclock
  const auto t1 = std::chrono::system_clock::now();             // expect-lint: wallclock
  const auto t2 = std::chrono::high_resolution_clock::now();    // expect-lint: wallclock
  const std::time_t unix_now = time(nullptr);                   // expect-lint: wallclock
  return static_cast<double>(rd() + r) +
         std::chrono::duration<double>(t2 - t0).count() +
         std::chrono::duration<double>(t1.time_since_epoch()).count() +
         static_cast<double>(unix_now);
}

// Method calls *named* time must not fire: the check targets the C library
// call, not accessors.
struct Clock {
  double time() const { return 0.0; }
};
inline double accessor_ok(const Clock& c) { return c.time(); }

}  // namespace fixture

// Fixture: a bare statement calling a Result-returning function must fire;
// consumed calls must not.
#include <string>

namespace fixture {

struct Error {
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T v) : value_(v), ok_(true) {}
  Result(Error) : value_{}, ok_(false) {}
  bool ok() const { return ok_; }
  const T& value() const { return value_; }

 private:
  T value_;
  bool ok_;
};

Result<int> parse_header(const std::string& wire);
Result<int> parse_body(const std::string& wire);

inline int drops_and_consumes(const std::string& wire) {
  parse_header(wire);  // expect-lint: discarded-result
  const auto body = parse_body(wire);
  if (!body.ok()) return -1;
  if (!parse_header(wire).ok()) return -2;       // consumed: condition
  return parse_body(wire).value() + body.value();  // consumed: chained
}

}  // namespace fixture

// Fixture: idiomatic clean code — zero findings expected.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fixture {

struct Duration {
  std::int64_t micros = 0;
};

struct Tunables {
  Duration solver_budget{250'000};  // typed time, not raw double seconds
  double hit_ratio_target = 0.9;
};

struct OrderedExporter {
  std::map<std::string, std::uint64_t> counters_;

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(counters_.size());
    for (const auto& [name, value] : counters_) out.push_back(name);
    return out;
  }
};

}  // namespace fixture

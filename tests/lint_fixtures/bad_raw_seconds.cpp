// Fixture: raw double seconds must fire; rates and non-time doubles must not.

namespace fixture {

struct Config {
  double timeout_s = 5.0;           // expect-lint: raw-seconds
  double retry_interval_seconds;    // expect-lint: raw-seconds
  double bandwidth_bytes_per_sec = 1e9;  // rate, not a time quantity
  double ratio = 0.5;               // plain double, no seconds suffix
};

inline double convert(double window_secs) {  // expect-lint: raw-seconds
  return window_secs * 2.0;
}

}  // namespace fixture

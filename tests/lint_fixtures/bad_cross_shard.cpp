// Fixture: shard-ownership violations (DESIGN.md §5i).  A file that uses the
// APE_SHARD_ macros opts into the sweep: every stateful class must name its
// owning shard, every trailing-underscore field must carry an ownership
// annotation from the committed owner set, and a callback handed to a
// deferred sink must not mutate another shard's APE_SHARD_LOCAL state.
#include <cstddef>
#include <functional>

#define APE_SHARD_CONTEXT(owner) static_assert(true, "shard context: " #owner)
#define APE_SHARD_LOCAL(owner)
#define APE_SHARD_SHARED

namespace fixture {

struct FakeSimulator {
  void schedule_at(long when, std::function<void()> fn);
};

// Owned by the client shard; `pending_` is the cross-shard mutation target.
class ClientRegistry {
  APE_SHARD_CONTEXT(client);

 public:
  APE_SHARD_LOCAL(client) std::size_t pending_ = 0;
};

// Stateful class in a shard-swept file with no APE_SHARD_CONTEXT.
class Orphan {  // expect-lint: shard-ownership
 public:
  int total_ = 0;
};

// Context owner outside the committed set (tools/lint/lint_config.json).
class Accelerated {
  APE_SHARD_CONTEXT(gpu);  // expect-lint: shard-ownership

 private:
  APE_SHARD_SHARED int queue_depth_ = 0;
};

// Context is fine but a state field carries no ownership annotation.
class OriginStore {
  APE_SHARD_CONTEXT(origin);

 private:
  APE_SHARD_LOCAL(origin) std::size_t bytes_ = 0;
  int hits_ = 0;  // expect-lint: shard-ownership
};

// Local state annotated with a different shard than the class context —
// local state belongs to its own shard; cross-shard state is SHARED.
class EdgeAgent {
  APE_SHARD_CONTEXT(edge);

 private:
  APE_SHARD_LOCAL(origin) std::size_t refills_ = 0;  // expect-lint: shard-ownership
};

// A deferred callback scheduled from the AP shard mutating client-owned
// state: fine today under the serial calendar queue, a data race the moment
// shards get their own worker threads.
class ApScheduler {
  APE_SHARD_CONTEXT(ap);

 public:
  void arm(ClientRegistry& reg) {
    sim_.schedule_at(5, [this, &reg] {
      reg.pending_ += 1;  // expect-lint: shard-ownership
      served_ += 1;       // own-shard state: fine
    });
  }

 private:
  APE_SHARD_SHARED FakeSimulator& sim_;
  APE_SHARD_LOCAL(ap) std::size_t served_ = 0;
};

}  // namespace fixture

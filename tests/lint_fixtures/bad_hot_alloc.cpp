// Fixture: heap allocations and by-name metric lookups inside a file
// annotated as hot-path must fire; placement new, allowlisted lines, and
// handle-based metric use must not.  (A second, unannotated fixture is not
// needed: every other fixture file lacks the marker, so the check staying
// silent there is already covered.)
// ape-lint: hot-path
#include <cstdint>
#include <memory>
#include <string>

namespace fixture {

struct Counter {
  void add(std::uint64_t n = 1) { value += n; }
  std::uint64_t value = 0;
};

struct HotRegistry {
  Counter& counter(const std::string&) { return slot; }
  Counter& gauge(const std::string&) { return slot; }
  Counter& histogram(const std::string&) { return slot; }
  Counter slot;
};

struct CounterHandle {
  Counter* resolved = nullptr;
  void add() { resolved->add(); }
};

inline void per_event(HotRegistry& registry, CounterHandle& handle) {
  int* raw = new int(7);  // expect-lint: hot-alloc
  auto owned = std::make_unique<int>(9);  // expect-lint: hot-alloc
  auto shared = std::make_shared<int>(11);  // expect-lint: hot-alloc
  registry.counter("engine.events").add();  // expect-lint: hot-alloc
  registry.gauge("engine.depth").add();  // expect-lint: hot-alloc
  registry.histogram("engine.latency_ms").add();  // expect-lint: hot-alloc

  // Pre-resolved handles are the sanctioned pattern: no literal, no walk.
  handle.add();

  // Placement new constructs into existing storage — the arena idiom.
  alignas(int) unsigned char buf[sizeof(int)];
  int* placed = ::new (static_cast<void*>(buf)) int(3);

  // Cold-path escape hatch.
  int* excused = new int(13);  // ape-lint: allow(hot-alloc)

  *raw += *owned + *shared + *placed + *excused;
  delete raw;
  delete excused;
}

}  // namespace fixture

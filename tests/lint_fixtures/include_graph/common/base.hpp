// Fixture: lowest layer — includes nothing, everyone may include it.
#pragma once

namespace fixture_graph {
using Tick = long long;
}  // namespace fixture_graph

// Fixture: layer-map violations.  sim and stats are committed as same-layer
// peers, and net sits a layer above sim — both includes break the map.
#pragma once

#include "common/base.hpp"
#include "net/fabric.hpp"    // expect-lint: layer-graph
#include "stats/tally.hpp"   // expect-lint: layer-graph

namespace fixture_graph {
struct SimClock {
  Tick now = 0;
};
}  // namespace fixture_graph

// Fixture: net includes only layers below it — clean.
#pragma once

#include "common/base.hpp"

namespace fixture_graph {
struct Fabric {
  Tick one_way_latency = 0;
};
}  // namespace fixture_graph

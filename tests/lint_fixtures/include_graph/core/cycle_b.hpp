// Fixture: the other half of the core/cycle_a.hpp <-> core/cycle_b.hpp
// cycle.  Reported once, anchored at cycle_a (see that file).
#pragma once

#include "core/cycle_a.hpp"

namespace fixture_graph {
struct CycleB {
  int from_a = 0;
};
}  // namespace fixture_graph

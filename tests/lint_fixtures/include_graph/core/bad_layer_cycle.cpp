// Fixture: entry point pulling the cyclic pair into the graph; its own
// includes are legal (own module + lower layers), so no finding lands here.
#include "core/cycle_a.hpp"
#include "net/fabric.hpp"
#include "sim/clock.hpp"

namespace fixture_graph {
int build_world() {
  CycleA a;
  Fabric f;
  SimClock c;
  return a.from_b + static_cast<int>(f.one_way_latency + c.now);
}
}  // namespace fixture_graph

// Fixture: half of an include cycle inside one module.  The layer map has
// nothing to say (same module), but the file-level graph does: with
// #pragma once a cyclic include compiles into silent truncation.  The cycle
// finding anchors here, the lexicographically smallest member.
#pragma once

#include "core/cycle_b.hpp"  // expect-lint: layer-graph

namespace fixture_graph {
struct CycleA {
  int from_b = 0;
};
}  // namespace fixture_graph

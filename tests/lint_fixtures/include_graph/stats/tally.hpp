// Fixture: stats sits one layer above common; this downward include is fine.
#pragma once

#include "common/base.hpp"

namespace fixture_graph {
struct Tally {
  Tick total = 0;
};
}  // namespace fixture_graph

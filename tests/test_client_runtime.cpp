// Client-runtime workflow: interception by base URL, flag-cache reuse,
// standalone vs piggybacked lookup, and fallback on stale flags.
#include <gtest/gtest.h>

#include "core/url_hash.hpp"
#include "testbed/testbed.hpp"

namespace ape::core {
namespace {

using testbed::System;
using testbed::Testbed;
using testbed::TestbedParams;

workload::AppSpec pair_app() {
  workload::AppSpec app;
  app.name = "pair";
  app.id = 60;
  app.domain = "api.pair.example";
  for (const char* name : {"one", "two"}) {
    workload::RequestSpec r;
    r.name = name;
    r.url = "http://api.pair.example/" + std::string(name);
    r.size_bytes = 8'000;
    r.ttl_minutes = 30;
    r.priority = 1;
    r.retrieval_latency = sim::milliseconds(25);
    app.requests.push_back(std::move(r));
  }
  return app;
}

struct ClientFixture : ::testing::Test {
  std::unique_ptr<Testbed> bed;
  Testbed::Client* client = nullptr;
  workload::AppSpec app = pair_app();

  void build(System system, std::uint32_t cdn_ttl = 0) {
    TestbedParams params;
    params.system = system;
    params.cdn_answer_ttl = cdn_ttl;
    bed = std::make_unique<Testbed>(params);
    bed->host_app(app);
    client = &bed->add_client("phone");
    for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
  }

  ClientRuntime::FetchResult fetch(const std::string& url) {
    ClientRuntime::FetchResult out;
    client->runtime->fetch(url, [&out](ClientRuntime::FetchResult r) { out = std::move(r); });
    bed->simulator().run();
    return out;
  }
};

TEST_F(ClientFixture, UnregisteredUrlTakesEdgePath) {
  build(System::ApeCache);
  workload::AppSpec other;
  other.name = "other";
  other.id = 61;
  other.domain = "api.other.example";
  workload::RequestSpec r;
  r.name = "obj";
  r.url = "http://api.other.example/obj";
  r.size_bytes = 1'000;
  other.requests.push_back(r);
  bed->host_app(other);  // hosted but NOT registered as cacheable

  const auto result = fetch("http://api.other.example/obj");
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.source, ClientRuntime::Source::EdgeServer);
  EXPECT_EQ(bed->ap().delegations_performed(), 0u);
}

TEST_F(ClientFixture, QueryParametersDoNotChangeCacheIdentity) {
  build(System::ApeCache);
  ASSERT_TRUE(fetch("http://api.pair.example/one?session=1").success);
  const auto second = fetch("http://api.pair.example/one?session=2");
  ASSERT_TRUE(second.success);
  // Different query string, same base URL: still a cache hit.
  EXPECT_EQ(second.source, ClientRuntime::Source::ApCache);
}

TEST_F(ClientFixture, FlagsReusedWithinDnsTtl) {
  // A block-listed sibling forces real-IP answers (with a TTL), so the
  // client keeps the response flags and skips later DNS queries entirely.
  app.requests.push_back([] {
    workload::RequestSpec r;
    r.name = "big";
    r.url = "http://api.pair.example/big";
    r.size_bytes = 600'000;
    r.ttl_minutes = 30;
    return r;
  }());
  build(System::ApeCache, /*cdn_ttl=*/30);
  ASSERT_TRUE(fetch("http://api.pair.example/big").success);  // -> block list
  ASSERT_TRUE(fetch("http://api.pair.example/one").success);  // delegation; flags cached
  const auto hit = fetch("http://api.pair.example/one");
  ASSERT_TRUE(hit.success);
  EXPECT_EQ(hit.source, ClientRuntime::Source::ApCache);

  const auto reused = fetch("http://api.pair.example/one");
  ASSERT_TRUE(reused.success);
  EXPECT_TRUE(reused.lookup_from_cache);
  EXPECT_EQ(reused.lookup_latency.count(), 0);
}

TEST_F(ClientFixture, UnknownUrlUnderCachedDomainDefaultsToDelegation) {
  app.requests.push_back([] {
    workload::RequestSpec r;
    r.name = "big";
    r.url = "http://api.pair.example/big";
    r.size_bytes = 600'000;
    r.ttl_minutes = 30;
    return r;
  }());
  build(System::ApeCache, /*cdn_ttl=*/30);
  ASSERT_TRUE(fetch("http://api.pair.example/big").success);  // flags now cacheable
  ASSERT_TRUE(fetch("http://api.pair.example/one").success);
  // Flags for the domain are now cached client-side but say nothing about
  // "two": the client must treat it as Delegation.
  const auto result = fetch("http://api.pair.example/two");
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.source, ClientRuntime::Source::ApDelegated);
}

TEST_F(ClientFixture, StaleCacheHitFlagFallsBackToEdge) {
  // A block-listed sibling keeps the domain never-fully-cached, so DNS-Cache
  // responses carry a real IP + TTL and the client caches the flags.
  app.requests.push_back([] {
    workload::RequestSpec r;
    r.name = "big";
    r.url = "http://api.pair.example/big";
    r.size_bytes = 600'000;  // above the block threshold
    r.ttl_minutes = 30;
    r.priority = 1;
    return r;
  }());
  build(System::ApeCache, /*cdn_ttl=*/30);

  ASSERT_TRUE(fetch("http://api.pair.example/big").success);  // -> block list
  ASSERT_TRUE(fetch("http://api.pair.example/one").success);  // delegation
  // Let the cached flags (which still say Delegation for "one") expire.
  bed->simulator().run_until(bed->simulator().now() + sim::seconds(31.0));
  const auto hit = fetch("http://api.pair.example/one");  // fresh flags: Cache-Hit
  ASSERT_TRUE(hit.success);
  EXPECT_EQ(hit.flag, CacheFlag::CacheHit);
  EXPECT_FALSE(hit.lookup_from_cache);

  // Evict behind the client's back; its cached Cache-Hit flag is now stale.
  bed->ap().data_cache().erase(hash_to_string(hash_url("http://api.pair.example/one")));

  const auto result = fetch("http://api.pair.example/one");
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(result.lookup_from_cache);
  EXPECT_EQ(result.flag, CacheFlag::CacheHit);  // what the client believed
  EXPECT_EQ(result.source, ClientRuntime::Source::EdgeServer);  // where it really got it
}

TEST_F(ClientFixture, StandaloneLookupSlowerThanPiggybacked) {
  build(System::ApeCache);
  // Warm the AP cache first.
  ASSERT_TRUE(fetch("http://api.pair.example/one").success);
  ASSERT_TRUE(fetch("http://api.pair.example/two").success);

  const auto piggybacked = fetch("http://api.pair.example/one");
  ASSERT_TRUE(piggybacked.success);

  ClientRuntime::FetchResult standalone;
  client->runtime->fetch_standalone("http://api.pair.example/one",
                                    [&](ClientRuntime::FetchResult r) {
                                      standalone = std::move(r);
                                    });
  bed->simulator().run();
  ASSERT_TRUE(standalone.success);
  // Two sequential queries cost roughly one extra AP round trip (paper
  // Fig. 11b: ~7 ms more).
  const double delta =
      sim::to_millis(standalone.lookup_latency) - sim::to_millis(piggybacked.lookup_latency);
  EXPECT_GT(delta, 2.0);
}

TEST_F(ClientFixture, ApeDisabledFetchGoesToEdge) {
  build(System::EdgeCache);
  const auto result = fetch("http://api.pair.example/one");
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.source, ClientRuntime::Source::EdgeServer);
  EXPECT_GT(sim::to_millis(result.retrieval_latency), 20.0);
}

TEST_F(ClientFixture, BadUrlReportsError) {
  build(System::ApeCache);
  const auto result = fetch("not a url at all");
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.error.empty());
}

TEST_F(ClientFixture, SourceNamesAreStable) {
  EXPECT_STREQ(to_string(ClientRuntime::Source::ApCache), "ap-cache");
  EXPECT_STREQ(to_string(ClientRuntime::Source::ApDelegated), "ap-delegated");
  EXPECT_STREQ(to_string(ClientRuntime::Source::EdgeServer), "edge");
  EXPECT_STREQ(to_string(ClientRuntime::Source::Unknown), "unknown");
}

TEST_F(ClientFixture, HitPathLatencyMatchesPaperBallpark) {
  build(System::ApeCache);
  ASSERT_TRUE(fetch("http://api.pair.example/one").success);
  ASSERT_TRUE(fetch("http://api.pair.example/two").success);
  const auto hit = fetch("http://api.pair.example/one");
  ASSERT_TRUE(hit.success);
  EXPECT_EQ(hit.source, ClientRuntime::Source::ApCache);
  // Paper: lookup ~7.5 ms, retrieval ~7 ms, total ~14 ms.
  EXPECT_NEAR(sim::to_millis(hit.lookup_latency), 7.5, 2.5);
  EXPECT_NEAR(sim::to_millis(hit.retrieval_latency), 7.0, 3.0);
  EXPECT_NEAR(sim::to_millis(hit.total), 14.2, 5.0);
}

TEST_F(ClientFixture, ConcurrentFetchesComplete) {
  build(System::ApeCache);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    client->runtime->fetch(i % 2 == 0 ? "http://api.pair.example/one"
                                      : "http://api.pair.example/two",
                           [&done](ClientRuntime::FetchResult r) {
                             EXPECT_TRUE(r.success);
                             ++done;
                           });
  }
  bed->simulator().run();
  EXPECT_EQ(done, 8);
}

}  // namespace
}  // namespace ape::core

// PACM: the knapsack solver, the utility/fairness formulation, the
// fairness-repair loop, and the CacheStore policy adapter.
#include <gtest/gtest.h>

#include "cache/object_store.hpp"
#include "core/knapsack.hpp"
#include "core/pacm.hpp"
#include "core/pacm_policy.hpp"
#include "obs/observer.hpp"
#include "sim/rng.hpp"

namespace ape::core {
namespace {

// ------------------------------------------------------------- knapsack

TEST(Knapsack, EmptyInput) {
  const auto result = solve_knapsack({}, 1000);
  EXPECT_TRUE(result.selected.empty());
  EXPECT_DOUBLE_EQ(result.total_value, 0.0);
}

TEST(Knapsack, AllFitWhenUnderCapacity) {
  std::vector<KnapsackItem> items{{1.0, 1000}, {2.0, 2000}, {3.0, 3000}};
  const auto result = solve_knapsack(items, 100'000);
  EXPECT_EQ(result.selected, (std::vector<bool>{true, true, true}));
  EXPECT_DOUBLE_EQ(result.total_value, 6.0);
}

TEST(Knapsack, PicksOptimalSubset) {
  // Capacity 10 kB; the greedy-by-density answer (item 0) is suboptimal.
  std::vector<KnapsackItem> items{
      {60.0, 5 * 1024},   // density 12/kB
      {55.0, 5 * 1024},   // density 11
      {56.0, 5 * 1024},   // density 11.2
  };
  const auto result = solve_knapsack(items, 10 * 1024);
  EXPECT_TRUE(result.exact);
  // Best pair: 60 + 56 = 116.
  EXPECT_DOUBLE_EQ(result.total_value, 116.0);
  EXPECT_TRUE(result.selected[0]);
  EXPECT_FALSE(result.selected[1]);
  EXPECT_TRUE(result.selected[2]);
}

TEST(Knapsack, ClassicDpInstance) {
  // Weights in kB units; values chosen so DP must mix.
  std::vector<KnapsackItem> items{
      {10.0, 5 * 1024}, {40.0, 4 * 1024}, {30.0, 6 * 1024}, {50.0, 3 * 1024}};
  const auto result = solve_knapsack(items, 10 * 1024);
  EXPECT_DOUBLE_EQ(result.total_value, 90.0);  // items 1 + 3
}

TEST(Knapsack, RespectsCapacityExactly) {
  std::vector<KnapsackItem> items{{5.0, 4096}, {5.0, 4096}, {5.0, 4096}};
  const auto result = solve_knapsack(items, 8192);
  EXPECT_LE(result.total_weight, 8192u);
  EXPECT_DOUBLE_EQ(result.total_value, 10.0);
}

TEST(Knapsack, OversizedItemNeverSelected) {
  std::vector<KnapsackItem> items{{100.0, 50'000}, {1.0, 100}};
  const auto result = solve_knapsack(items, 10'000);
  EXPECT_FALSE(result.selected[0]);
  EXPECT_TRUE(result.selected[1]);
}

TEST(Knapsack, GreedyFallbackWhenOverBudget) {
  std::vector<KnapsackItem> items(100, KnapsackItem{1.0, 1024});
  const auto result = solve_knapsack(items, 50 * 1024, /*dp_budget=*/10);
  EXPECT_FALSE(result.exact);
  EXPECT_LE(result.total_weight, 50u * 1024u);
  EXPECT_NEAR(result.total_value, 50.0, 1.0);
}

TEST(Knapsack, GreedyPrefersDenseItems) {
  std::vector<KnapsackItem> items{{100.0, 10 * 1024}, {5.0, 1024}, {1.0, 1024}};
  const auto result = solve_knapsack(items, 11 * 1024, /*dp_budget=*/1);
  EXPECT_TRUE(result.selected[0]);
  EXPECT_TRUE(result.selected[1]);
  EXPECT_FALSE(result.selected[2]);
}

// Property: DP beats-or-matches greedy on random instances, and both
// respect capacity.
class KnapsackProperty : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackProperty, DpDominatesGreedy) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<KnapsackItem> items;
  const int n = static_cast<int>(rng.uniform_int(1, 30));
  for (int i = 0; i < n; ++i) {
    items.push_back(KnapsackItem{rng.uniform_real(0.1, 100.0),
                                 static_cast<std::size_t>(rng.uniform_int(512, 50'000))});
  }
  const std::size_t capacity = static_cast<std::size_t>(rng.uniform_int(10'000, 200'000));
  const auto dp = solve_knapsack(items, capacity);
  const auto greedy = solve_knapsack(items, capacity, /*dp_budget=*/1);
  EXPECT_TRUE(dp.exact);
  EXPECT_FALSE(greedy.exact);
  // DP is exact at 1 kB granularity; the byte-exact greedy can squeeze a
  // touch more in at quantization boundaries, never dominate outright.
  EXPECT_GE(dp.total_value + 1e-9, greedy.total_value * 0.9);
  EXPECT_LE(dp.total_weight, capacity);
  EXPECT_LE(greedy.total_weight, capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty, ::testing::Range(1, 21));

// ----------------------------------------------------------- PacmSolver

PacmObject object(const std::string& key, AppId app, std::size_t size, int priority,
                  double ttl_s, double latency_ms) {
  PacmObject o;
  o.key = key;
  o.app = app;
  o.size_bytes = size;
  o.priority = priority;
  o.remaining_ttl_s = ttl_s;
  o.fetch_latency_ms = latency_ms;
  return o;
}

TEST(PacmSolver, UtilityIsPaperFormula) {
  const auto o = object("k", 1, 1000, 2, 600.0, 30.0);
  // U = R * e * l * p = 3 * 600 * 30 * 2.
  EXPECT_DOUBLE_EQ(PacmSolver::utility(o, 3.0), 3.0 * 600.0 * 30.0 * 2.0);
}

TEST(PacmSolver, UtilityClampsZeroFrequency) {
  const auto o = object("k", 1, 1000, 1, 100.0, 10.0);
  EXPECT_GT(PacmSolver::utility(o, 0.0), 0.0);
}

TEST(PacmSolver, EmptyCacheNeedsNoEvictions) {
  ApeConfig config;
  PacmSolver solver(config);
  const auto decision = solver.select_evictions({}, 1000, {});
  EXPECT_TRUE(decision.evict.empty());
}

TEST(PacmSolver, EvictsLowestUtilityUnderPressure) {
  ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  PacmSolver solver(config);

  std::vector<PacmObject> cached{
      object("high", 1, 5'000, 2, 1000.0, 40.0),
      object("low", 2, 5'000, 1, 10.0, 5.0),
  };
  // Incoming 5 kB object: one of the two must go.
  const auto decision = solver.select_evictions(cached, 5'000,
                                                {{1, 3.0}, {2, 3.0}});
  ASSERT_EQ(decision.evict.size(), 1u);
  EXPECT_EQ(decision.evict[0], "low");
}

TEST(PacmSolver, KeepsEverythingWhenRoomRemains) {
  ApeConfig config;
  config.cache_capacity_bytes = 100'000;
  PacmSolver solver(config);
  std::vector<PacmObject> cached{
      object("a", 1, 10'000, 1, 100.0, 10.0),
      object("b", 2, 10'000, 1, 100.0, 10.0),
  };
  const auto decision = solver.select_evictions(cached, 10'000, {{1, 1.0}, {2, 1.0}});
  EXPECT_TRUE(decision.evict.empty());
}

TEST(PacmSolver, PriorityBreaksTies) {
  ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  PacmSolver solver(config);
  std::vector<PacmObject> cached{
      object("low-prio", 1, 5'000, 1, 300.0, 30.0),
      object("high-prio", 2, 5'000, 2, 300.0, 30.0),
  };
  const auto decision = solver.select_evictions(cached, 5'000, {{1, 2.0}, {2, 2.0}});
  ASSERT_EQ(decision.evict.size(), 1u);
  EXPECT_EQ(decision.evict[0], "low-prio");
}

TEST(PacmSolver, FairnessOfSingleAppIsZero) {
  std::vector<PacmObject> objects{object("a", 1, 1000, 1, 1.0, 1.0)};
  EXPECT_DOUBLE_EQ(PacmSolver::fairness(objects, {true}, {{1, 1.0}}), 0.0);
}

TEST(PacmSolver, FairnessDetectsHoarding) {
  // Two apps, same frequency, one holds 10x the bytes.
  std::vector<PacmObject> objects{
      object("a", 1, 100'000, 1, 1.0, 1.0),
      object("b", 2, 10'000, 1, 1.0, 1.0),
  };
  const double f =
      PacmSolver::fairness(objects, {true, true}, {{1, 1.0}, {2, 1.0}});
  EXPECT_GT(f, 0.4);
}

TEST(PacmSolver, FairnessRepairEngagesWhenViolated) {
  ApeConfig config;
  config.cache_capacity_bytes = 120'000;
  config.fairness_theta = 0.2;
  PacmSolver solver(config);

  // App 1 hoards: 4 big high-utility objects; app 2 has one small one.
  std::vector<PacmObject> cached;
  for (int i = 0; i < 4; ++i) {
    cached.push_back(
        object("big" + std::to_string(i), 1, 25'000, 2, 1000.0, 50.0));
  }
  cached.push_back(object("small", 2, 2'000, 1, 100.0, 10.0));

  const auto decision = solver.select_evictions(cached, 10'000, {{1, 3.0}, {2, 3.0}});
  // Repair must have run at least once and the final packing satisfy theta
  // (or be declared unsatisfiable).
  if (decision.fairness_satisfied) {
    EXPECT_LE(decision.fairness, config.fairness_theta + 1e-9);
  }
  EXPECT_GT(decision.repair_rounds + (decision.fairness_satisfied ? 0 : 1), 0);
  // App 1 must have lost at least one object to fairness.
  EXPECT_FALSE(decision.evict.empty());
}

TEST(PacmSolver, KeptBytesRespectCapacityMinusIncoming) {
  ApeConfig config;
  config.cache_capacity_bytes = 50'000;
  PacmSolver solver(config);
  sim::Rng rng(3);
  std::vector<PacmObject> cached;
  for (int i = 0; i < 20; ++i) {
    cached.push_back(object("k" + std::to_string(i), static_cast<AppId>(i % 4),
                            static_cast<std::size_t>(rng.uniform_int(1000, 9000)),
                            1 + static_cast<int>(rng.uniform_int(0, 1)),
                            rng.uniform_real(10.0, 3000.0), rng.uniform_real(5.0, 50.0)));
  }
  const std::size_t incoming = 8'000;
  const auto decision = solver.select_evictions(
      cached, incoming, {{0, 1.0}, {1, 2.0}, {2, 3.0}, {3, 4.0}});

  std::size_t kept_bytes = 0;
  for (const auto& o : cached) {
    bool evicted = false;
    for (const auto& key : decision.evict) evicted |= (key == o.key);
    if (!evicted) kept_bytes += o.size_bytes;
  }
  EXPECT_LE(kept_bytes, config.cache_capacity_bytes - incoming);
}

// ----------------------------------------------------------- PacmPolicy

TEST(PacmPolicy, IntegratesWithCacheStore) {
  sim::Simulator sim;
  ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  FrequencyTracker freq(config.alpha, config.frequency_window);
  cache::CacheStore store(config.cache_capacity_bytes,
                          std::make_unique<PacmPolicy>(config, sim, freq));

  auto make_entry = [&sim](const std::string& key, std::size_t size, int priority,
                           AppId app, double ttl_s, double latency_ms) {
    cache::CacheEntry e;
    e.key = key;
    e.size_bytes = size;
    e.priority = priority;
    e.app_id = app;
    e.expires = sim.now() + sim::seconds(ttl_s);
    e.fetch_latency = sim::milliseconds(latency_ms);
    return e;
  };

  freq.record_request(1, sim.now());
  freq.record_request(2, sim.now());

  EXPECT_EQ(store.insert(make_entry("valuable", 5'000, 2, 1, 3000.0, 45.0), sim.now()),
            cache::CacheStore::InsertOutcome::Inserted);
  EXPECT_EQ(store.insert(make_entry("cheap", 5'000, 1, 2, 30.0, 5.0), sim.now()),
            cache::CacheStore::InsertOutcome::Inserted);
  // A third object forces PACM to choose: "cheap" must be the victim.
  EXPECT_EQ(store.insert(make_entry("incoming", 5'000, 2, 1, 3000.0, 45.0), sim.now()),
            cache::CacheStore::InsertOutcome::Inserted);
  EXPECT_NE(store.lookup_any("valuable"), nullptr);
  EXPECT_EQ(store.lookup_any("cheap"), nullptr);
  EXPECT_NE(store.lookup_any("incoming"), nullptr);
  EXPECT_LE(store.used_bytes(), store.capacity_bytes());

  const auto& policy = static_cast<const PacmPolicy&>(store.policy());
  EXPECT_EQ(policy.invocations(), 1u);
  EXPECT_EQ(policy.name(), "PACM");
}

TEST(PacmPolicy, ExpiredObjectsHaveZeroUtilityAndGoFirst) {
  sim::Simulator sim;
  ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  FrequencyTracker freq(config.alpha, config.frequency_window);
  cache::CacheStore store(config.cache_capacity_bytes,
                          std::make_unique<PacmPolicy>(config, sim, freq));

  cache::CacheEntry nearly_dead;
  nearly_dead.key = "dying";
  nearly_dead.size_bytes = 5'000;
  nearly_dead.priority = 2;
  nearly_dead.app_id = 1;
  nearly_dead.expires = sim.now() + sim::seconds(1.0);
  nearly_dead.fetch_latency = sim::milliseconds(50.0);
  store.insert(std::move(nearly_dead), sim.now());

  cache::CacheEntry healthy;
  healthy.key = "healthy";
  healthy.size_bytes = 5'000;
  healthy.priority = 1;
  healthy.app_id = 2;
  healthy.expires = sim.now() + sim::seconds(3000.0);
  healthy.fetch_latency = sim::milliseconds(20.0);
  store.insert(std::move(healthy), sim.now());

  cache::CacheEntry incoming;
  incoming.key = "incoming";
  incoming.size_bytes = 5'000;
  incoming.priority = 1;
  incoming.app_id = 3;
  incoming.expires = sim.now() + sim::seconds(3000.0);
  incoming.fetch_latency = sim::milliseconds(20.0);
  store.insert(std::move(incoming), sim.now());

  EXPECT_EQ(store.lookup_any("dying"), nullptr);
  EXPECT_NE(store.lookup_any("healthy"), nullptr);
}

// ------------------------------------------------- wall-clock opt-in

TEST(PacmSolver, SolveTimingIsOffByDefault) {
  ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  PacmSolver solver(config);
  obs::Observer observer;
  solver.set_observer(&observer);

  std::vector<PacmObject> cached{
      object("a", 1, 5'000, 1, 100.0, 10.0),
      object("b", 2, 5'000, 1, 100.0, 10.0),
  };
  (void)solver.select_evictions(cached, 5'000, {{1, 1.0}, {2, 1.0}});

  // Stable instruments recorded; the volatile wall-clock one was not —
  // the default configuration never samples the host clock.
  EXPECT_GE(observer.metrics().counters().at("pacm.solves").value(), 1u);
  EXPECT_EQ(observer.metrics().histograms().count("pacm.solve_us"), 0u);
}

TEST(PacmSolver, SolveTimingRecordedWhenWallclockEnabled) {
  ApeConfig config;
  config.cache_capacity_bytes = 10'000;
  PacmSolver solver(config);
  obs::Observer observer;
  observer.enable_wallclock();
  solver.set_observer(&observer);

  std::vector<PacmObject> cached{
      object("a", 1, 5'000, 1, 100.0, 10.0),
      object("b", 2, 5'000, 1, 100.0, 10.0),
  };
  (void)solver.select_evictions(cached, 5'000, {{1, 1.0}, {2, 1.0}});

  const auto& histograms = observer.metrics().histograms();
  ASSERT_EQ(histograms.count("pacm.solve_us"), 1u);
  const auto& entry = histograms.at("pacm.solve_us");
  EXPECT_EQ(entry.volatility, obs::Volatility::Volatile);
  EXPECT_EQ(entry.histogram.count(), 1u);
  EXPECT_GE(entry.histogram.min(), 0.0);
}

}  // namespace
}  // namespace ape::core

#include <gtest/gtest.h>

#include "dns/codec.hpp"
#include "dns/message.hpp"
#include "dns/name.hpp"

namespace ape::dns {
namespace {

// -------------------------------------------------------------- DnsName

TEST(DnsName, ParsesAndRoundTrips) {
  const auto name = DnsName::parse("www.Apple.COM");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value().to_string(), "www.apple.com");  // lowercased
  EXPECT_EQ(name.value().label_count(), 3u);
}

TEST(DnsName, TrailingDotAccepted) {
  EXPECT_EQ(DnsName::parse("example.com.").value().to_string(), "example.com");
}

TEST(DnsName, RootName) {
  const auto root = DnsName::parse("");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value().empty());
  EXPECT_EQ(root.value().to_string(), ".");
  EXPECT_EQ(root.value().wire_length(), 1u);
}

TEST(DnsName, RejectsEmptyLabel) {
  EXPECT_FALSE(DnsName::parse("a..b").ok());
  EXPECT_FALSE(DnsName::parse(".a").ok());
}

TEST(DnsName, RejectsOverlongLabel) {
  EXPECT_FALSE(DnsName::parse(std::string(64, 'x') + ".com").ok());
  EXPECT_TRUE(DnsName::parse(std::string(63, 'x') + ".com").ok());
}

TEST(DnsName, RejectsOverlongName) {
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcde.";
  long_name += "com";  // > 253 chars
  EXPECT_FALSE(DnsName::parse(long_name).ok());
}

TEST(DnsName, RejectsBadCharacters) {
  EXPECT_FALSE(DnsName::parse("sp ace.com").ok());
  EXPECT_FALSE(DnsName::parse("semi;colon.com").ok());
}

TEST(DnsName, SubdomainMatching) {
  const auto www = DnsName::parse("www.apple.com").value();
  const auto apex = DnsName::parse("apple.com").value();
  const auto other = DnsName::parse("apple.org").value();
  EXPECT_TRUE(www.is_subdomain_of(apex));
  EXPECT_TRUE(www.is_subdomain_of(www));
  EXPECT_FALSE(apex.is_subdomain_of(www));
  EXPECT_FALSE(www.is_subdomain_of(other));
  EXPECT_TRUE(www.is_subdomain_of(DnsName{}));  // everything under root
}

TEST(DnsName, WireLength) {
  // 3www5apple3com0 = 1+3 + 1+5 + 1+3 + 1 = 15.
  EXPECT_EQ(DnsName::parse("www.apple.com").value().wire_length(), 15u);
}

TEST(DnsName, EqualityIsCaseInsensitiveViaNormalization) {
  EXPECT_EQ(DnsName::parse("A.B.C").value(), DnsName::parse("a.b.c").value());
}

TEST(DnsName, HashConsistentWithEquality) {
  DnsNameHash hasher;
  EXPECT_EQ(hasher(DnsName::parse("X.Y").value()), hasher(DnsName::parse("x.y").value()));
}

// ------------------------------------------------------- message codec

DnsMessage sample_query() {
  DnsMessage m;
  m.header.id = 0xBEEF;
  m.header.rd = true;
  m.questions.push_back(
      Question{DnsName::parse("www.apple.com").value(), RrType::A, RrClass::In});
  return m;
}

TEST(Codec, QueryRoundTrip) {
  const DnsMessage original = sample_query();
  const auto wire = encode(original);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header.id, 0xBEEF);
  EXPECT_TRUE(decoded.value().header.rd);
  EXPECT_FALSE(decoded.value().header.qr);
  ASSERT_EQ(decoded.value().questions.size(), 1u);
  EXPECT_EQ(decoded.value().questions[0], original.questions[0]);
}

TEST(Codec, ResponseRoundTripAllSections) {
  DnsMessage m = sample_query();
  m.header.qr = true;
  m.header.aa = true;
  m.header.rcode = Rcode::NoError;
  const auto name = DnsName::parse("www.apple.com").value();
  const auto cname = DnsName::parse("www.apple.com.edgekey.net").value();
  m.answers.push_back(make_cname_record(name, cname, 3600));
  m.answers.push_back(make_a_record(cname, net::IpAddress::from_octets(2, 3, 4, 5), 20));
  m.authorities.push_back(make_a_record(DnsName::parse("ns1.apple.com").value(),
                                        net::IpAddress::from_octets(6, 7, 8, 9), 300));
  m.additionals.push_back(make_opt_record(4096));

  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().answers, m.answers);
  EXPECT_EQ(decoded.value().authorities, m.authorities);
  EXPECT_EQ(decoded.value().additionals, m.additionals);
  EXPECT_TRUE(decoded.value().header.aa);
}

TEST(Codec, HeaderFlagsRoundTrip) {
  DnsMessage m = sample_query();
  m.header.qr = true;
  m.header.tc = true;
  m.header.ra = true;
  m.header.rcode = Rcode::NxDomain;
  m.header.opcode = Opcode::Status;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().header.qr);
  EXPECT_TRUE(decoded.value().header.tc);
  EXPECT_TRUE(decoded.value().header.ra);
  EXPECT_EQ(decoded.value().header.rcode, Rcode::NxDomain);
  EXPECT_EQ(decoded.value().header.opcode, Opcode::Status);
}

TEST(Codec, NameCompressionShrinksRepeatedNames) {
  DnsMessage m = sample_query();
  m.header.qr = true;
  const auto name = m.questions[0].name;
  for (int i = 0; i < 4; ++i) {
    m.answers.push_back(make_a_record(name, net::IpAddress::from_octets(1, 1, 1, 1), 60));
  }
  const auto wire = encode(m);
  // Each repeated name costs 2 pointer bytes instead of 15.
  // Uncompressed would be >= 12 + (15+4) + 4*(15+10+4); assert well below.
  EXPECT_LT(wire.size(), 120u);

  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  for (const auto& rr : decoded.value().answers) {
    EXPECT_EQ(rr.name, name);
  }
}

TEST(Codec, CompressionSharesSuffixes) {
  DnsMessage m;
  m.header.id = 1;
  m.questions.push_back(
      Question{DnsName::parse("a.example.com").value(), RrType::A, RrClass::In});
  m.questions.push_back(
      Question{DnsName::parse("b.example.com").value(), RrType::A, RrClass::In});
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().questions[0].name.to_string(), "a.example.com");
  EXPECT_EQ(decoded.value().questions[1].name.to_string(), "b.example.com");
}

TEST(Codec, DecodeRejectsTruncatedHeader) {
  const std::vector<std::uint8_t> tiny{0x12, 0x34, 0x01};
  EXPECT_FALSE(decode(tiny).ok());
}

TEST(Codec, DecodeRejectsTruncatedQuestion) {
  auto wire = encode(sample_query());
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(Codec, DecodeRejectsCountsBeyondData) {
  auto wire = encode(sample_query());
  wire[5] = 9;  // QDCOUNT = 9, but only one question present
  EXPECT_FALSE(decode(wire).ok());
}

TEST(Codec, DecodeRejectsCompressionLoop) {
  // Hand-built packet: header + question whose name points at itself.
  ByteWriter w;
  w.u16(1);     // id
  w.u16(0);     // flags
  w.u16(1);     // qd
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xC00C);  // pointer to offset 12 = itself
  w.u16(1);       // qtype
  w.u16(1);       // qclass
  EXPECT_FALSE(decode(std::move(w).take()).ok());
}

TEST(Codec, DecodeRejectsPointerOutOfRange) {
  ByteWriter w;
  w.u16(1);
  w.u16(0);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xC0FF);  // pointer to offset 255, beyond packet end
  w.u16(1);
  w.u16(1);
  EXPECT_FALSE(decode(std::move(w).take()).ok());
}

TEST(Codec, DecodeRejectsReservedLabelType) {
  ByteWriter w;
  w.u16(1);
  w.u16(0);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u8(0x80);  // 10xxxxxx: reserved label type
  w.u8(0);
  w.u16(1);
  w.u16(1);
  EXPECT_FALSE(decode(std::move(w).take()).ok());
}

TEST(Codec, DecodeEmptyPacketFails) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}).ok());
}

// Property sweep: garbage of many sizes never crashes the decoder.
class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, GarbageNeverCrashes) {
  std::uint64_t x = GetParam();
  std::vector<std::uint8_t> junk;
  const std::size_t size = (x % 120) + 1;
  for (std::size_t i = 0; i < size; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    junk.push_back(static_cast<std::uint8_t>(x >> 56));
  }
  const auto result = decode(junk);  // must not crash; ok either way
  (void)result;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 41));

// Mutation property: flipping any single byte of a valid packet never
// crashes the decoder.
TEST(Codec, SingleByteMutationsNeverCrash) {
  DnsMessage m = sample_query();
  m.header.qr = true;
  m.answers.push_back(make_a_record(m.questions[0].name,
                                    net::IpAddress::from_octets(1, 2, 3, 4), 60));
  const auto wire = encode(m);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}, std::uint8_t{0xFF}}) {
      auto mutated = wire;
      mutated[i] ^= flip;
      const auto result = decode(mutated);
      (void)result;
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------- RDATA types

TEST(Rdata, ARecordRoundTrip) {
  const auto ip = net::IpAddress::from_octets(203, 0, 113, 7);
  const auto rdata = encode_a_rdata(ip);
  EXPECT_EQ(rdata.size(), 4u);
  EXPECT_EQ(decode_a_rdata(rdata).value(), ip);
}

TEST(Rdata, ARecordRejectsWrongSize) {
  EXPECT_FALSE(decode_a_rdata({1, 2, 3}).ok());
  EXPECT_FALSE(decode_a_rdata({1, 2, 3, 4, 5}).ok());
}

TEST(Rdata, CnameRoundTrip) {
  const auto target = DnsName::parse("cache.cdn.example").value();
  EXPECT_EQ(decode_cname_rdata(encode_cname_rdata(target)).value(), target);
}

TEST(Rdata, CnameRejectsTruncation) {
  auto rdata = encode_cname_rdata(DnsName::parse("a.b").value());
  rdata.pop_back();
  rdata.pop_back();
  EXPECT_FALSE(decode_cname_rdata(rdata).ok());
}

TEST(Rdata, OptRecordCarriesPayloadSizeInClass) {
  const auto opt = make_opt_record(4096);
  EXPECT_EQ(opt.type, RrType::Opt);
  EXPECT_EQ(opt.rr_class, 4096);
  EXPECT_TRUE(opt.name.empty());
}

TEST(Rdata, MakeResponseForCopiesIdentity) {
  const DnsMessage q = sample_query();
  const DnsMessage r = make_response_for(q, Rcode::NxDomain);
  EXPECT_EQ(r.header.id, q.header.id);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.rcode, Rcode::NxDomain);
  EXPECT_EQ(r.questions, q.questions);
}

TEST(Message, FindAnswerAndAdditional) {
  DnsMessage m = sample_query();
  const auto name = m.questions[0].name;
  m.answers.push_back(make_a_record(name, net::IpAddress::from_octets(1, 1, 1, 1), 5));
  m.additionals.push_back(make_opt_record(512));
  EXPECT_NE(m.find_answer(RrType::A), nullptr);
  EXPECT_EQ(m.find_answer(RrType::Cname), nullptr);
  EXPECT_NE(m.find_additional(RrType::Opt), nullptr);
  EXPECT_EQ(m.find_additional(RrType::A), nullptr);
}

}  // namespace
}  // namespace ape::dns

// Baseline systems: Wi-Cache (controller + agent + fetcher), Edge Cache,
// APE-CACHE-LRU configuration.
#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace ape::baselines {
namespace {

using core::ClientRuntime;
using testbed::System;
using testbed::Testbed;
using testbed::TestbedParams;

workload::AppSpec simple_app() {
  workload::AppSpec app;
  app.name = "simple";
  app.id = 70;
  app.domain = "api.simple.example";
  workload::RequestSpec r;
  r.name = "obj";
  r.url = "http://api.simple.example/obj";
  r.size_bytes = 12'000;
  r.ttl_minutes = 30;
  r.priority = 2;
  r.retrieval_latency = sim::milliseconds(25);
  app.requests.push_back(std::move(r));
  return app;
}

struct BaselineFixture : ::testing::Test {
  std::unique_ptr<Testbed> bed;
  Testbed::Client* client = nullptr;
  workload::AppSpec app = simple_app();

  void build(System system) {
    TestbedParams params;
    params.system = system;
    bed = std::make_unique<Testbed>(params);
    bed->host_app(app);
    client = &bed->add_client("phone");
    for (auto& spec : app.cacheables()) client->runtime->register_cacheable(spec);
  }

  ClientRuntime::FetchResult fetch_object() {
    ClientRuntime::FetchResult out;
    client->fetcher->fetch_object(app.requests[0].url,
                                  [&out](ClientRuntime::FetchResult r) { out = std::move(r); });
    bed->simulator().run();
    return out;
  }
};

// ---------------------------------------------------------------- Wi-Cache

TEST_F(BaselineFixture, WiCacheFirstLookupGoesToEdge) {
  build(System::WiCache);
  const auto result = fetch_object();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.source, ClientRuntime::Source::EdgeServer);
  // Lookup = one WAN round trip to the EC2 controller (12 hops, ~26 ms).
  EXPECT_GT(sim::to_millis(result.lookup_latency), 20.0);
  ASSERT_NE(bed->wicache_controller(), nullptr);
  EXPECT_EQ(bed->wicache_controller()->lookups(), 1u);
}

TEST_F(BaselineFixture, WiCachePrefetchMakesSecondRequestAnApHit) {
  build(System::WiCache);
  ASSERT_TRUE(fetch_object().success);      // miss -> controller prefetches
  bed->simulator().run();                    // let the prefetch settle
  ASSERT_NE(bed->wicache_agent(), nullptr);
  EXPECT_EQ(bed->wicache_agent()->store().entry_count(), 1u);
  EXPECT_EQ(bed->wicache_controller()->registry_size(), 1u);

  const auto second = fetch_object();
  ASSERT_TRUE(second.success);
  EXPECT_EQ(second.source, ClientRuntime::Source::ApCache);
  // Retrieval from the AP is millisecond-level; lookup still pays the
  // controller round trip (the architectural difference vs APE-CACHE).
  EXPECT_LT(sim::to_millis(second.retrieval_latency), 12.0);
  EXPECT_GT(sim::to_millis(second.lookup_latency), 20.0);
}

TEST_F(BaselineFixture, WiCacheEvictionUpdatesControllerRegistry) {
  build(System::WiCache);
  ASSERT_TRUE(fetch_object().success);
  bed->simulator().run();
  ASSERT_EQ(bed->wicache_controller()->registry_size(), 1u);

  // Force eviction at the agent; the REMOVE report must reach EC2.
  const auto entries = bed->wicache_agent()->store().entries();
  ASSERT_FALSE(entries.empty());
  const_cast<cache::CacheStore&>(bed->wicache_agent()->store()).erase(entries[0]->key);
  bed->simulator().run();
  EXPECT_EQ(bed->wicache_controller()->registry_size(), 0u);
}

TEST_F(BaselineFixture, WiCacheStaleRegistryRecovers) {
  build(System::WiCache);
  ASSERT_TRUE(fetch_object().success);
  bed->simulator().run();

  // Make the registry stale: drop the object at the agent but intercept
  // the REMOVE by clearing after the report settles, then re-adding a
  // phantom registry entry is impossible from outside — instead simulate
  // the race by erasing and immediately fetching before the report lands.
  const auto entries = bed->wicache_agent()->store().entries();
  ASSERT_FALSE(entries.empty());
  const std::string key = entries[0]->key;
  ClientRuntime::FetchResult out;
  client->fetcher->fetch_object(app.requests[0].url,
                                [&out](ClientRuntime::FetchResult r) { out = std::move(r); });
  // Erase while the lookup is in flight: controller will answer "AP" from
  // its soon-to-be-stale registry.
  const_cast<cache::CacheStore&>(bed->wicache_agent()->store()).erase(key);
  bed->simulator().run();
  ASSERT_TRUE(out.success);
  // Fallback re-consulted the controller and went to the edge.
  EXPECT_EQ(out.source, ClientRuntime::Source::EdgeServer);
}

// -------------------------------------------------------------- Edge Cache

TEST_F(BaselineFixture, EdgeCacheAlwaysPaysWanLatency) {
  build(System::EdgeCache);
  const auto first = fetch_object();
  const auto second = fetch_object();
  ASSERT_TRUE(first.success);
  ASSERT_TRUE(second.success);
  EXPECT_EQ(second.source, ClientRuntime::Source::EdgeServer);
  // No AP caching: both fetches cost tens of milliseconds.
  EXPECT_GT(sim::to_millis(second.total), 40.0);
}

TEST_F(BaselineFixture, EdgeFetcherNameIsStable) {
  build(System::EdgeCache);
  EXPECT_EQ(client->fetcher->system_name(), "Edge Cache");
}

// ----------------------------------------------------------- APE-CACHE-LRU

TEST_F(BaselineFixture, ApeLruUsesLruPolicyOnAp) {
  build(System::ApeCacheLru);
  EXPECT_EQ(bed->ap().data_cache().policy().name(), "LRU");
  const auto first = fetch_object();
  ASSERT_TRUE(first.success);
  EXPECT_EQ(first.source, ClientRuntime::Source::ApDelegated);
  const auto second = fetch_object();
  ASSERT_TRUE(second.success);
  EXPECT_EQ(second.source, ClientRuntime::Source::ApCache);
}

TEST_F(BaselineFixture, ApeUsesPacmPolicyOnAp) {
  build(System::ApeCache);
  EXPECT_EQ(bed->ap().data_cache().policy().name(), "PACM");
}

TEST_F(BaselineFixture, MakeApeLruOptionsFlipsPolicyOnly) {
  core::ApRuntime::Options base;
  base.policy = core::ApRuntime::Policy::Pacm;
  base.enable_ape = true;
  const auto lru = make_ape_lru_options(base);
  EXPECT_EQ(lru.policy, core::ApRuntime::Policy::Lru);
  EXPECT_TRUE(lru.enable_ape);
}

TEST_F(BaselineFixture, SystemNamesMatchPaper) {
  EXPECT_STREQ(testbed::to_string(System::ApeCache), "APE-CACHE");
  EXPECT_STREQ(testbed::to_string(System::ApeCacheLru), "APE-CACHE-LRU");
  EXPECT_STREQ(testbed::to_string(System::WiCache), "Wi-Cache");
  EXPECT_STREQ(testbed::to_string(System::EdgeCache), "Edge Cache");
}

}  // namespace
}  // namespace ape::baselines

// Workload substrate: app DAG model, critical-path priorities, the
// dummy-app generator, Zipf arrivals, and the traffic traces of Table II.
#include <gtest/gtest.h>

#include "workload/app_generator.hpp"
#include "workload/arrivals.hpp"
#include "workload/critical_path.hpp"
#include "workload/real_apps.hpp"
#include "workload/traffic_trace.hpp"

namespace ape::workload {
namespace {

// ------------------------------------------------------------- app model

TEST(AppModel, MovieTrailerMatchesPaperStructure) {
  const AppSpec app = make_movie_trailer();
  ASSERT_TRUE(app.valid());
  ASSERT_EQ(app.requests.size(), 5u);  // id + rating/plot/cast/thumbnail
  EXPECT_EQ(app.requests[0].depends_on.size(), 0u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(app.requests[i].depends_on, std::vector<std::size_t>{0});
  }
  // Table III: movieID and thumbnail high priority, the rest low.
  EXPECT_EQ(app.requests[0].priority, 2);  // getMovieID
  EXPECT_EQ(app.requests[1].priority, 1);  // rating
  EXPECT_EQ(app.requests[2].priority, 1);  // plot
  EXPECT_EQ(app.requests[3].priority, 1);  // cast
  EXPECT_EQ(app.requests[4].priority, 2);  // thumbnail
}

TEST(AppModel, VirtualHomeMatchesTableIII) {
  const AppSpec app = make_virtual_home();
  ASSERT_TRUE(app.valid());
  ASSERT_EQ(app.requests.size(), 2u);
  EXPECT_EQ(app.requests[0].priority, 1);  // ARObjectsID low
  EXPECT_EQ(app.requests[1].priority, 2);  // ARObjects high
}

TEST(AppModel, CacheablesMirrorRequests) {
  const AppSpec app = make_movie_trailer();
  const auto cacheables = app.cacheables();
  ASSERT_EQ(cacheables.size(), app.requests.size());
  EXPECT_EQ(cacheables[0].id, "http://api.movietrailer.app/getMovieID");
  EXPECT_EQ(cacheables[0].app, app.id);
  EXPECT_EQ(cacheables[4].priority, 2);
}

TEST(AppModel, ObjectsCarryEdgeHostingMetadata) {
  const AppSpec app = make_virtual_home();
  const auto objects = app.objects();
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[1].size_bytes, app.requests[1].size_bytes);
  EXPECT_EQ(objects[1].ttl_seconds, app.requests[1].ttl_minutes * 60);
  EXPECT_EQ(objects[1].app_id, app.id);
}

TEST(AppModel, ValidRejectsOutOfRangeDeps) {
  AppSpec app;
  RequestSpec r;
  r.depends_on = {5};
  app.requests.push_back(r);
  EXPECT_FALSE(app.valid());
}

TEST(AppModel, ValidRejectsCycles) {
  AppSpec app;
  RequestSpec a, b;
  a.depends_on = {1};
  b.depends_on = {0};
  app.requests.push_back(a);
  app.requests.push_back(b);
  EXPECT_FALSE(app.valid());
}

TEST(AppModel, TotalBytes) {
  const AppSpec app = make_virtual_home();
  EXPECT_EQ(app.total_object_bytes(), 153'000u);
}

// --------------------------------------------------------- critical path

TEST(CriticalPath, MovieTrailerGoesThroughThumbnail) {
  const AppSpec app = make_movie_trailer();
  const CriticalPath path = critical_path(app);
  // Paper Sec. III-A: critical path is getMovieID -> getThumbnail.
  ASSERT_EQ(path.request_indices.size(), 2u);
  EXPECT_EQ(app.requests[path.request_indices[0]].name, "getMovieID");
  EXPECT_EQ(app.requests[path.request_indices[1]].name, "getThumbnail");
}

TEST(CriticalPath, SingleNodeApp) {
  AppSpec app;
  RequestSpec r;
  r.name = "only";
  r.retrieval_latency = sim::milliseconds(10);
  app.requests.push_back(r);
  const CriticalPath path = critical_path(app);
  ASSERT_EQ(path.request_indices.size(), 1u);
  EXPECT_GT(path.expected_duration.count(), 0);
}

TEST(CriticalPath, DeepChainBeatsWideFanout) {
  AppSpec app;
  auto add = [&app](double ms, std::vector<std::size_t> deps) {
    RequestSpec r;
    r.name = "r" + std::to_string(app.requests.size());
    r.retrieval_latency = sim::milliseconds(ms);
    r.size_bytes = 0;
    r.depends_on = std::move(deps);
    app.requests.push_back(r);
  };
  add(10, {});        // 0
  add(10, {0});       // 1
  add(10, {1});       // 2: chain 0-1-2 = 30 ms
  add(25, {0});       // 3: branch 0-3 = 35 ms -> critical
  const CriticalPath path = critical_path(app);
  ASSERT_EQ(path.request_indices.size(), 2u);
  EXPECT_EQ(path.request_indices.back(), 3u);
}

TEST(CriticalPath, AssignPrioritiesMarksPathHigh) {
  AppSpec app = make_movie_trailer();
  for (auto& r : app.requests) r.priority = 0;  // wipe
  assign_priorities_by_critical_path(app);
  EXPECT_EQ(app.requests[0].priority, 2);
  EXPECT_EQ(app.requests[4].priority, 2);
  EXPECT_EQ(app.requests[1].priority, 1);
}

TEST(CriticalPath, ExpectedFetchTimeGrowsWithSize) {
  RequestSpec small, large;
  small.size_bytes = 1'000;
  large.size_bytes = 100'000;
  small.retrieval_latency = large.retrieval_latency = sim::milliseconds(30);
  EXPECT_LT(expected_fetch_time(small), expected_fetch_time(large));
}

// ------------------------------------------------------------- generator

TEST(AppGenerator, ProducesRequestedCount) {
  GeneratorParams params;
  params.app_count = 28;
  sim::Rng rng(1);
  const auto apps = generate_apps(params, rng);
  EXPECT_EQ(apps.size(), 28u);
}

TEST(AppGenerator, RespectsConfiguredRanges) {
  GeneratorParams params;
  params.app_count = 50;
  sim::Rng rng(2);
  const auto apps = generate_apps(params, rng);
  for (const auto& app : apps) {
    ASSERT_TRUE(app.valid());
    ASSERT_GE(app.requests.size(), 1u + params.min_fanout);
    ASSERT_LE(app.requests.size(), 1u + params.max_fanout);
    for (const auto& r : app.requests) {
      EXPECT_GE(r.size_bytes, params.min_object_bytes);
      EXPECT_LE(r.size_bytes, params.max_object_bytes);
      EXPECT_GE(r.ttl_minutes, params.min_ttl_minutes);
      EXPECT_LE(r.ttl_minutes, params.max_ttl_minutes);
      EXPECT_GE(sim::to_millis(r.retrieval_latency), params.min_retrieval_ms);
      EXPECT_LE(sim::to_millis(r.retrieval_latency), params.max_retrieval_ms);
    }
  }
}

TEST(AppGenerator, UniqueDomainsAndIds) {
  GeneratorParams params;
  params.app_count = 30;
  sim::Rng rng(3);
  const auto apps = generate_apps(params, rng);
  std::set<std::string> domains;
  std::set<core::AppId> ids;
  for (const auto& app : apps) {
    domains.insert(app.domain);
    ids.insert(app.id);
  }
  EXPECT_EQ(domains.size(), 30u);
  EXPECT_EQ(ids.size(), 30u);
}

TEST(AppGenerator, EveryAppHasHighAndLowPriority) {
  GeneratorParams params;
  params.app_count = 20;
  sim::Rng rng(4);
  for (const auto& app : generate_apps(params, rng)) {
    bool has_high = false, has_low = false;
    for (const auto& r : app.requests) {
      has_high |= r.priority == 2;
      has_low |= r.priority == 1;
    }
    EXPECT_TRUE(has_high);
    EXPECT_TRUE(has_low);  // fanout >= 2 guarantees an off-path request
  }
}

TEST(AppGenerator, DeterministicForSameSeed) {
  GeneratorParams params;
  sim::Rng a(9), b(9);
  const auto apps_a = generate_apps(params, a);
  const auto apps_b = generate_apps(params, b);
  ASSERT_EQ(apps_a.size(), apps_b.size());
  for (std::size_t i = 0; i < apps_a.size(); ++i) {
    EXPECT_EQ(apps_a[i].requests.size(), apps_b[i].requests.size());
    for (std::size_t j = 0; j < apps_a[i].requests.size(); ++j) {
      EXPECT_EQ(apps_a[i].requests[j].size_bytes, apps_b[i].requests[j].size_bytes);
    }
  }
}

// -------------------------------------------------------------- arrivals

TEST(Arrivals, AverageRateMatchesConfiguration) {
  sim::Rng rng(5);
  ArrivalSchedule schedule(30, 3.0, 0.8, rng);
  double total_rate = 0.0;
  for (std::size_t i = 0; i < 30; ++i) total_rate += schedule.rate_per_minute(i);
  EXPECT_NEAR(total_rate / 30.0, 3.0, 1e-9);
}

TEST(Arrivals, ZipfSkewsPopularity) {
  sim::Rng rng(6);
  ArrivalSchedule schedule(10, 3.0, 1.0, rng);
  EXPECT_GT(schedule.rate_per_minute(0), schedule.rate_per_minute(9) * 2.0);
}

TEST(Arrivals, EventsAreTimeOrderedAndWithinHorizon) {
  sim::Rng rng(7);
  ArrivalSchedule schedule(5, 6.0, 0.8, rng);
  const sim::Time horizon{sim::minutes(10.0)};
  sim::Time last{};
  std::size_t count = 0;
  while (auto a = schedule.next(horizon)) {
    EXPECT_GE(a->at, last);
    EXPECT_LE(a->at, horizon);
    ASSERT_LT(a->app_index, 5u);
    last = a->at;
    ++count;
  }
  // 5 apps x 6/min x 10 min = 300 expected.
  EXPECT_NEAR(static_cast<double>(count), 300.0, 90.0);
}

TEST(Arrivals, EmpiricalFrequencyConverges) {
  sim::Rng rng(8);
  ArrivalSchedule schedule(4, 3.0, 0.8, rng);
  std::vector<std::size_t> counts(4, 0);
  const sim::Time horizon{sim::minutes(200.0)};
  while (auto a = schedule.next(horizon)) ++counts[a->app_index];
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected = schedule.rate_per_minute(i) * 200.0;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, expected * 0.25 + 20.0);
  }
}

// -------------------------------------------------------- traffic traces

TEST(TrafficTrace, SpecsMatchTableII) {
  const TraceSpec low = low_rate_trace();
  EXPECT_EQ(low.packets, 14'261u);
  EXPECT_EQ(low.flows, 1'209u);
  EXPECT_EQ(low.app_count, 28u);
  EXPECT_NEAR(low.average_packet_bytes(), 646.0, 60.0);

  const TraceSpec high = high_rate_trace();
  EXPECT_EQ(high.packets, 791'615u);
  EXPECT_EQ(high.flows, 40'686u);
  EXPECT_EQ(high.app_count, 132u);
  EXPECT_NEAR(high.average_packet_bytes(), 449.0, 60.0);
}

TEST(TrafficTrace, GeneratedTraceMatchesSpecCounts) {
  sim::Rng rng(10);
  const TraceSpec spec = low_rate_trace();
  const auto packets = generate_trace(spec, rng);
  EXPECT_EQ(packets.size(), spec.packets);
  std::size_t flows = 0;
  for (const auto& p : packets) {
    flows += p.starts_flow ? 1 : 0;
    EXPECT_LE(p.at.since_epoch, spec.duration);
    EXPECT_GE(p.bytes, 60u);
    EXPECT_LE(p.bytes, 1500u);
  }
  EXPECT_NEAR(static_cast<double>(flows), static_cast<double>(spec.flows),
              static_cast<double>(spec.flows) * 0.1);
}

TEST(TrafficTrace, PacketsAreTimeOrdered) {
  sim::Rng rng(11);
  const auto packets = generate_trace(low_rate_trace(), rng);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].at, packets[i - 1].at);
  }
}

}  // namespace
}  // namespace ape::workload
